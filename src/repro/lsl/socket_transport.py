"""LSL over real TCP sockets (localhost functional transport).

The paper's depots were "user-level depot processes that implement the
LSL protocol" on stock Linux.  This module is the same thing scaled to a
test box: every component runs on ``127.0.0.1`` with real sockets, real
byte streams and the real wire format from :mod:`repro.lsl.header`.

* :class:`DepotServer` — accepts a session, parses the header, advances
  the loose source route (or consults a route table keyed by
  ``ip:port`` strings), opens the onward connection and pumps bytes
  through a bounded user-space buffer;
* :class:`SinkServer` — terminates sessions and stores payloads by
  session id;
* :func:`send_session` — the source side: connect, emit header, stream
  payload.

Fault tolerance
---------------
A session whose header carries a :class:`~repro.lsl.options.ResumeOffset`
option is *fault-tolerant*: every receiving node replies with an 8-byte
acknowledgement point, stages the payload in a
:class:`~repro.lsl.faults.SessionLedger` that survives reconnects, and
confirms completion with a final 8-byte acknowledgement.  Senders (the
source and each depot's downstream side) retry failed sublinks under a
:class:`~repro.lsl.faults.RetryPolicy`, resuming from the byte the peer
acknowledged — recovery cost is proportional to the failed sublink only.
Servers additionally consult an optional
:class:`~repro.lsl.faults.FaultPlan` so tests can inject connection
drops, refused connects, stalls and corrupted headers deterministically.

Striping and multicast
----------------------
A session whose header also carries a
:class:`~repro.lsl.options.StripeOption` runs as one of N parallel
*striped sublinks* (GridFTP-style): each stripe connection transports an
interleaved slice of the payload in stripe-local order, every node
reassembles the slices positionally through the shared
:class:`~repro.lsl.faults.SessionLedger`, and the resume protocol runs
per stripe — each stripe acknowledges and resumes at its own watermark.
Sessions of type :attr:`~repro.lsl.header.SessionType.MULTICAST` retain
their completed ledgers instead of evicting them, so a staging tree's
ancestors can replay the payload toward descendants (and toward orphaned
branches after a depot death) without the source resending a byte.

Localhost has no bandwidth-delay product, so this transport verifies
*correctness* (framing, routing, integrity, back-pressure, recovery);
performance claims are the simulator's job.
"""

from __future__ import annotations

import logging
import socket
import struct
import threading
import time
from dataclasses import dataclass

from repro.lsl.faults import (
    FaultKind,
    FaultPlan,
    RetryExhausted,
    RetryPolicy,
    SessionLedger,
)
from repro.lsl.header import FIXED_HEADER_SIZE, SessionHeader, SessionType
from repro.lsl.options import LooseSourceRoute, ResumeOffset, StripeOption
from repro.obs.registry import NULL_REGISTRY, Registry
from repro.obs.timeline import (
    DISABLED_TIMELINE,
    STREAM_DOWN,
    STREAM_UP,
    ProgressWatermarks,
    SessionTimeline,
)
from repro.util.validation import check_positive_int

_LOG = logging.getLogger(__name__)

_BACKLOG = 16
_IO_CHUNK = 64 << 10

#: Kernel send/receive buffer cap.  Loopback autotuning otherwise grows
#: the in-flight window to megabytes, and every in-flight byte at the
#: moment of a connection failure is a byte the resume protocol must
#: retransmit — capping the buffers keeps recovery accounting tight and
#: deterministic across kernels.
_SOCK_BUF = 128 << 10

#: The 8-byte network-order acknowledgement used by the resume handshake
#: (once after the header, once after the final payload byte).
RESUME_ACK = struct.Struct("!Q")


class SessionEnded(ConnectionError):
    """The peer closed cleanly at a message boundary (no partial unit)."""


class TruncatedStream(ConnectionError):
    """The peer closed mid-unit: a header or payload was cut short."""


class ThreadLeakError(RuntimeError):
    """A server's handler thread outlived ``close()``'s join timeout."""


def _cap_buffers(sock: socket.socket) -> None:
    """Pin ``sock``'s kernel buffers to :data:`_SOCK_BUF` (best effort)."""
    for opt in (socket.SO_SNDBUF, socket.SO_RCVBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, opt, _SOCK_BUF)
        except OSError:  # pragma: no cover - platform quirk
            pass


def _abort_socket(sock: socket.socket) -> None:
    """Close with RST so the peer fails fast instead of seeing clean EOF."""
    try:
        # struct linger is a *kernel* ABI, not wire data: it must use the
        # platform's native layout, so the '!' prefix would be wrong here.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)  # rpr: disable=RPR001
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _connect_with_retry(
    address: tuple[str, int], policy: RetryPolicy
) -> socket.socket:
    """Open a TCP connection under ``policy``'s timeout and retry budget.

    Only the connect itself is retried (a refused or unreachable listener
    often just restarted); once the socket is open, stream errors
    propagate to the caller untouched.
    """
    attempts = 0
    while True:
        try:
            return socket.create_connection(
                address, timeout=policy.connect_timeout
            )
        except (ConnectionError, OSError):
            attempts += 1
            if attempts > policy.max_retries:
                raise
            time.sleep(policy.delay(attempts - 1))


def _read_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes.

    Raises
    ------
    SessionEnded
        Clean EOF before the first byte — the peer finished at a unit
        boundary (e.g. no further session on this connection).
    TruncatedStream
        EOF after a partial read — the unit was cut mid-flight.

    Both are ``ConnectionError`` subclasses, so callers that only care
    about "the read failed" keep working unchanged.
    """
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if not buf:
                raise SessionEnded(
                    f"clean EOF before any of {n} expected bytes"
                )
            raise TruncatedStream(
                f"peer closed after {len(buf)} of {n} expected bytes"
            )
        buf += chunk
    return bytes(buf)


def read_header(sock: socket.socket) -> SessionHeader:
    """Read and decode one session header from a connected socket.

    Raises :class:`SessionEnded` if the peer closed before sending any
    header byte and :class:`TruncatedStream` if the header was cut
    mid-flight.
    """
    fixed = _read_exact(sock, FIXED_HEADER_SIZE)
    # header length is the third u16
    hlen = int.from_bytes(fixed[4:6], "big")
    if hlen < FIXED_HEADER_SIZE:
        raise ValueError(f"header length {hlen} below fixed size")
    rest = _read_exact(sock, hlen - FIXED_HEADER_SIZE) if hlen > FIXED_HEADER_SIZE else b""
    header, _ = SessionHeader.decode(fixed + rest)
    return header


class _Server:
    """Shared accept-loop plumbing for depot and sink servers."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str | None = None,
        fault_plan: FaultPlan | None = None,
        registry: Registry | None = None,
        timeline: SessionTimeline | None = None,
    ) -> None:
        self.name = name or type(self).__name__.lower()
        self.fault_plan = fault_plan
        #: metric series sink; defaults to the shared no-op registry
        self.obs = registry if registry is not None else NULL_REGISTRY
        #: session event log; defaults to the shared disabled timeline
        self.timeline = timeline if timeline is not None else DISABLED_TIMELINE
        if not hasattr(self, "errors"):
            self.errors: list = []
        self.leaked_threads: list[threading.Thread] = []
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        _cap_buffers(self._sock)  # inherited by accepted connections
        self._sock.bind((host, port))
        self._sock.listen(_BACKLOG)
        self.host, self.port = self._sock.getsockname()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._handler_seq = 0
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        #: guards the thread registry (_threads, _handler_seq) and the
        #: errors list, both shared between handler threads and close()
        self._reg_lock = threading.Lock()
        #: serialises close() bodies so concurrent callers cannot race
        #: the teardown; _closed makes repeat calls cheap no-ops
        self._close_lock = threading.Lock()
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"lsl:{self.name}:accept",
            daemon=True,
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._sock.accept()
            except OSError:
                return  # listener closed
            with self._reg_lock:
                self._handler_seq += 1
                seq = self._handler_seq
            thread = threading.Thread(
                target=self._safe_handle,
                args=(conn,),
                name=f"lsl:{self.name}:h{seq}:{peer[0]}:{peer[1]}",
                daemon=True,
            )
            thread.start()
            with self._reg_lock:
                self._threads.append(thread)

    def _safe_handle(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._conns.add(conn)
        try:
            if self.fault_plan is not None and self.fault_plan.should_refuse(
                self.name
            ):
                _abort_socket(conn)
                return
            self.handle(conn)
        except SessionEnded:
            # Clean EOF before any header byte: a probe or an idle
            # connection closing at the unit boundary, not a failure.
            # A header or payload cut mid-unit still raises
            # TruncatedStream and lands in ``errors`` below.
            _LOG.debug("%s: peer closed before sending a header", self.name)
        except (ConnectionError, OSError, ValueError) as exc:
            with self._reg_lock:
                self.errors.append(exc)
            self.timeline.record(
                "error", node=self.name, stream=STREAM_UP, detail=str(exc)
            )
            self.obs.counter(
                "lsl_handler_errors_total", labels={"node": self.name}
            ).inc()
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def handle(self, conn: socket.socket) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self, timeout: float = 5.0, abort: bool = False) -> None:
        """Stop accepting and wait for in-flight sessions to finish.

        ``timeout`` bounds the *total* wait across all handler threads.
        Threads still alive afterwards are reported loudly: a warning
        naming each leaked thread (and the handler it runs) is logged, a
        :class:`ThreadLeakError` carrying those names is appended to
        ``errors`` and the threads are listed in ``leaked_threads`` — a
        silent leak is a bug, a loud one is a diagnosable event.  With
        ``abort=True`` every live connection is reset first (simulating
        a crashed depot), which unblocks handlers stuck in ``recv``.

        Idempotent and safe under concurrent callers: the teardown is
        serialised, a repeat ``close()`` returns immediately, and a
        ``kill()`` *after* a graceful close still aborts any handler
        that outlived the first call.
        """
        with self._close_lock:
            if self._closed and not abort:
                return
            self._closed = True
            self._close_locked(timeout, abort)

    def _close_locked(self, timeout: float, abort: bool) -> None:
        self._stop.set()
        try:
            # shutdown() (not just close()) is what actually wakes a
            # thread blocked in accept() on Linux.
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        if abort:
            with self._conn_lock:
                conns = list(self._conns)
            for conn in conns:
                try:
                    # shutdown() wakes a handler blocked in recv() on
                    # this connection; close() alone would not.
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                _abort_socket(conn)
        deadline = time.monotonic() + timeout
        self._accept_thread.join(timeout=timeout)
        leaked: list[threading.Thread] = []
        if self._accept_thread.is_alive():  # pragma: no cover - defensive
            leaked.append(self._accept_thread)
        with self._reg_lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                leaked.append(thread)
        with self._reg_lock:
            self._threads = [t for t in self._threads if t.is_alive()]
        if leaked:
            self.leaked_threads = leaked
            detail = ", ".join(
                self._describe_thread(thread) for thread in leaked
            )
            message = (
                f"{self.name}: {len(leaked)} handler thread(s) still alive "
                f"after close(timeout={timeout}): {detail}"
            )
            _LOG.warning(message)
            with self._reg_lock:
                self.errors.append(ThreadLeakError(message))

    def _describe_thread(self, thread: threading.Thread) -> str:
        """``name (target=...)`` for the leak report.

        Thread names encode the server and peer (``lsl:<server>:h<seq>:
        <ip>:<port>``); the target is recovered from which loop the
        thread runs, so the report says *which* handler wedged, not just
        how many.
        """
        if thread is self._accept_thread:
            target = type(self)._accept_loop.__qualname__
        else:
            target = type(self).handle.__qualname__
        return f"{thread.name} (target={target})"

    def kill(self) -> None:
        """Simulate a crash: reset live connections, stop listening."""
        self.close(timeout=0.5, abort=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class _DownstreamPump:
    """A depot's fault-tolerant downstream side for one session.

    Lazily connects toward ``next_hop``, performs the resume handshake,
    streams newly staged ledger bytes, and transparently reconnects
    (bounded by the depot's :class:`~repro.lsl.faults.RetryPolicy`) when
    the sublink fails — resending only bytes the downstream node had not
    acknowledged.

    With ``stripe`` given the pump serves one striped sublink: offsets
    are stripe-local, staged bytes are gathered with
    :meth:`~repro.lsl.faults.SessionLedger.read_stripe`, and the final
    acknowledgement must equal that stripe's share of the payload.
    """

    def __init__(
        self,
        depot: "DepotServer",
        next_hop: tuple[str, int],
        header: SessionHeader,
        ledger: SessionLedger,
        stripe: StripeOption | None = None,
    ) -> None:
        self._depot = depot
        self._next_hop = next_hop
        self._header = header
        self._ledger = ledger
        self._stripe = stripe
        self._sock: socket.socket | None = None
        self._fwd = 0  # next (stripe-local) offset to send downstream
        self._attempts = 0
        self._tx = depot.obs.counter(
            "lsl_tx_bytes_total", labels={"node": depot.name}
        )

    def _staged(self) -> int:
        if self._stripe is None:
            return self._ledger.acked
        return self._ledger.stripe_acked(self._stripe.index)

    def _goal(self) -> int:
        if self._stripe is None:
            return self._ledger.total
        return self._ledger.stripe_total(self._stripe.index)

    def _read(self, start: int, end: int) -> bytes:
        if self._stripe is None:
            return self._ledger.read(start, end)
        return self._ledger.read_stripe(self._stripe.index, start, end)

    def _note_sent(self, start: int, end: int) -> int:
        if self._stripe is None:
            return self._ledger.note_sent(start, end)
        return self._ledger.note_stripe_sent(self._stripe.index, start, end)

    def _backoff(self, exc: Exception) -> None:
        self._drop_socket()
        self._attempts += 1
        policy = self._depot.retry
        if self._attempts > policy.max_retries:
            raise RetryExhausted(
                f"downstream {self._next_hop} failed after "
                f"{policy.max_retries} retries"
            ) from exc
        time.sleep(policy.delay(self._attempts - 1))

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _connect(self) -> None:
        policy = self._depot.retry
        while self._sock is None:
            sock = None
            try:
                sock = socket.create_connection(
                    self._next_hop, timeout=policy.connect_timeout
                )
                sock.settimeout(policy.io_timeout)
                _cap_buffers(sock)
                timeline = self._depot.timeline
                session = self._header.hex_id
                timeline.record(
                    "connect",
                    node=self._depot.name,
                    stream=STREAM_DOWN,
                    session=session,
                )
                timeline.record(
                    "header_tx",
                    node=self._depot.name,
                    stream=STREAM_DOWN,
                    session=session,
                )
                encoded = self._header.encode()
                plan = self._depot.fault_plan
                if plan is not None:
                    encoded = plan.corrupt_header(self._depot.name, encoded)
                sock.sendall(encoded)
                ack = RESUME_ACK.unpack(_read_exact(sock, RESUME_ACK.size))[0]
                if ack > 0:
                    timeline.record(
                        "resume",
                        node=self._depot.name,
                        stream=STREAM_DOWN,
                        session=session,
                        nbytes=ack,
                    )
                self._sock = sock
                self._fwd = ack
            except (ConnectionError, OSError) as exc:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
                self._backoff(exc)

    def flush(self) -> None:
        """Push every staged byte beyond the forward point downstream."""
        while True:
            staged = self._staged()
            if self._fwd >= staged and self._sock is not None:
                return
            if self._sock is None:
                self._connect()
                continue
            chunk = self._read(self._fwd, staged)
            if not chunk:
                return
            try:
                self._sock.sendall(chunk)
            except (ConnectionError, OSError) as exc:
                self._backoff(exc)
                continue
            end = self._fwd + len(chunk)
            self._tx.inc(len(chunk))
            self._depot._note_retransmitted(
                self._note_sent(self._fwd, end)
            )
            self._fwd = end

    def finish(self) -> None:
        """Flush, half-close, and insist on the downstream final ack."""
        while True:
            try:
                self.flush()
                assert self._sock is not None
                self._sock.shutdown(socket.SHUT_WR)
                final = RESUME_ACK.unpack(
                    _read_exact(self._sock, RESUME_ACK.size)
                )[0]
                if final != self._goal():
                    raise TruncatedStream(
                        f"downstream acknowledged {final} of "
                        f"{self._goal()} bytes"
                    )
                self._depot.timeline.record(
                    "complete",
                    node=self._depot.name,
                    stream=STREAM_DOWN,
                    session=self._header.hex_id,
                    nbytes=final,
                    detail=(
                        "" if self._stripe is None
                        else f"stripe={self._stripe.index}"
                    ),
                )
                return
            except (ConnectionError, OSError) as exc:
                self._backoff(exc)

    def close(self) -> None:
        self._drop_socket()


class DepotServer(_Server):
    """A forwarding depot on real sockets.

    Parameters
    ----------
    host, port:
        Listen address (port 0 picks an ephemeral port).
    route_table:
        Optional ``dest_ip -> next_hop_ip:port`` strings mapping used
        when a session carries no loose source route.  Values are
        ``"ip:port"``.
    buffer_size:
        User-space relay buffer per session, in bytes (the store in
        store-and-forward).  Fault-tolerant sessions instead stage up to
        the full payload in a :class:`~repro.lsl.faults.SessionLedger` —
        that retained copy is what makes depot-resume possible.
    name:
        Label used by :class:`~repro.lsl.faults.FaultPlan` rules and
        diagnostics (defaults to ``"depotserver"``).
    fault_plan:
        Optional injected-fault schedule this depot consults.
    retry:
        Backoff policy for this depot's downstream reconnects.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        route_table: dict[str, str] | None = None,
        buffer_size: int = 1 << 20,
        name: str | None = None,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        registry: Registry | None = None,
        timeline: SessionTimeline | None = None,
    ) -> None:
        # An integer check, not just positivity: a fractional size like
        # 0.5 used to truncate to recv(0), which reads as instant EOF
        # and silently drops the session payload.
        check_positive_int("buffer_size", buffer_size)
        self.route_table = dict(route_table or {})
        self.buffer_size = buffer_size
        self.retry = retry or RetryPolicy()
        self.sessions_forwarded = 0
        self.bytes_forwarded = 0
        #: bytes this depot sent downstream more than once (recovery cost)
        self.retransmitted_bytes = 0
        #: fault-tolerant sessions that resumed after an interruption
        self.sessions_resumed = 0
        #: guards the forwarding counters, which concurrent session
        #: handlers update
        self._stats_lock = threading.Lock()
        self.errors: list = []
        #: asynchronous sessions parked here, keyed by hex session id
        self.held: dict[str, bytes] = {}
        self._held_lock = threading.Lock()
        #: staging ledgers of in-flight fault-tolerant sessions
        self._ledgers: dict[str, SessionLedger] = {}
        self._ledger_lock = threading.Lock()
        super().__init__(
            host,
            port,
            name=name,
            fault_plan=fault_plan,
            registry=registry,
            timeline=timeline,
        )

    def _next_hop(self, header: SessionHeader) -> tuple[tuple[str, int], SessionHeader]:
        lsrr = header.option(LooseSourceRoute)
        if lsrr is not None:
            hop, remaining = lsrr.advance()
            if hop is not None:
                options = tuple(
                    remaining if opt is lsrr else opt for opt in header.options
                )
                return hop, header.with_options(options)
        entry = self.route_table.get(header.dst_ip)
        if entry is not None:
            ip, _, port = entry.partition(":")
            return (ip, int(port)), header
        return (header.dst_ip, header.dst_port), header

    def _ledger_for(
        self, hex_id: str, total: int, stripe: StripeOption | None = None
    ) -> SessionLedger:
        stripes = 1 if stripe is None else stripe.count
        block = 16 << 10 if stripe is None else stripe.block
        with self._ledger_lock:
            ledger = self._ledgers.get(hex_id)
            if ledger is None:
                ledger = SessionLedger(total, stripes=stripes, block=block)
                self._ledgers[hex_id] = ledger
            else:
                if not ledger.matches(stripes, block):
                    raise ValueError(
                        f"session {hex_id} stripe layout mismatch: ledger "
                        f"x{ledger.stripes}/block {ledger.block}, connection "
                        f"x{stripes}/block {block}"
                    )
                if stripe is None:
                    # _stats_lock nests inside _ledger_lock here; no other
                    # path takes them in the opposite order.  Striped
                    # connections count their own resumes per stripe —
                    # stripes 2..N finding the ledger stripe 1 created is
                    # normal operation, not a recovery.
                    with self._stats_lock:
                        self.sessions_resumed += 1
            return ledger

    def snapshot(self) -> dict[str, int]:
        """A consistent view of the traffic counters, under the lock.

        Every out-of-thread read of the forwarding counters (CLI status
        loops, metric exports, tests polling for completion) must come
        through here: the attributes themselves are only coherent while
        ``_stats_lock`` is held.
        """
        with self._stats_lock:
            return {
                "sessions_forwarded": self.sessions_forwarded,
                "bytes_forwarded": self.bytes_forwarded,
                "retransmitted_bytes": self.retransmitted_bytes,
                "sessions_resumed": self.sessions_resumed,
            }

    def fill_registry(self, registry: Registry | None = None) -> Registry:
        """Publish the locked :meth:`snapshot` as labelled gauges.

        Routes the legacy attribute counters through the obs layer:
        gauges named ``lsl_depot_<counter>`` carry a ``node`` label so
        exports from several depots can share one registry.  Uses the
        server's own registry when none is given; returns the registry
        written to.
        """
        target = registry if registry is not None else self.obs
        for key, value in self.snapshot().items():
            target.gauge(
                f"lsl_depot_{key}", labels={"node": self.name}
            ).set(value)
        return target

    def _evict_ledger(self, hex_id: str) -> None:
        with self._ledger_lock:
            self._ledgers.pop(hex_id, None)

    def _note_retransmitted(self, nbytes: int) -> None:
        """Count downstream bytes sent more than once (recovery cost)."""
        with self._stats_lock:
            self.retransmitted_bytes += nbytes

    def handle(self, conn: socket.socket) -> None:
        """Serve one inbound session: park, pick up, resume, or forward."""
        header = read_header(conn)
        self.timeline.record(
            "header_rx", node=self.name, stream=STREAM_UP,
            session=header.hex_id,
        )
        self.obs.counter(
            "lsl_sessions_total", labels={"node": self.name}
        ).inc()
        # asynchronous pickup: stream a held session back to the caller
        if header.session_type == SessionType.PICKUP:
            with self._held_lock:
                payload = self.held.pop(header.hex_id, None)
            if payload is None:
                raise ValueError(f"no held session {header.hex_id}")
            conn.sendall(payload)
            return
        resume = header.option(ResumeOffset)
        stripe = header.option(StripeOption)
        if stripe is not None and resume is None:
            raise ValueError(
                f"striped session {header.hex_id} lacks a resume option"
            )
        # sessions addressed to this depot are parked, not forwarded
        if (header.dst_ip, header.dst_port) == (self.host, self.port):
            if stripe is not None:
                self._park_striped(conn, header, resume, stripe)
                return
            if resume is not None:
                self._park_resumable(conn, header, resume)
                return
            rx = self.obs.counter(
                "lsl_rx_bytes_total", labels={"node": self.name}
            )
            chunks = bytearray()
            while True:
                data = conn.recv(_IO_CHUNK)
                if not data:
                    break
                if not chunks:
                    self.timeline.record(
                        "first_byte", node=self.name, stream=STREAM_UP,
                        session=header.hex_id, nbytes=len(data),
                    )
                chunks += data
                rx.inc(len(data))
            self.timeline.record(
                "eof", node=self.name, stream=STREAM_UP,
                session=header.hex_id, nbytes=len(chunks),
            )
            with self._held_lock:
                self.held[header.hex_id] = bytes(chunks)
            return
        if stripe is not None:
            self._forward_striped(conn, header, resume, stripe)
            return
        if resume is not None:
            self._forward_resumable(conn, header, resume)
            return
        next_hop, out_header = self._next_hop(header)
        watch = (
            self.fault_plan.stream_watch(self.name)
            if self.fault_plan is not None
            else None
        )
        rx = self.obs.counter(
            "lsl_rx_bytes_total", labels={"node": self.name}
        )
        tx = self.obs.counter(
            "lsl_tx_bytes_total", labels={"node": self.name}
        )
        with _connect_with_retry(next_hop, self.retry) as out:
            self.timeline.record(
                "connect", node=self.name, stream=STREAM_DOWN,
                session=header.hex_id,
            )
            self.timeline.record(
                "header_tx", node=self.name, stream=STREAM_DOWN,
                session=header.hex_id,
            )
            encoded = out_header.encode()
            if self.fault_plan is not None:
                encoded = self.fault_plan.corrupt_header(self.name, encoded)
            out.sendall(encoded)
            # bounded store-and-forward pump
            received = 0
            while True:
                data = conn.recv(min(_IO_CHUNK, self.buffer_size))
                if not data:
                    break
                if received == 0:
                    self.timeline.record(
                        "first_byte", node=self.name, stream=STREAM_UP,
                        session=header.hex_id, nbytes=len(data),
                    )
                if watch is not None:
                    rule = watch.advance(len(data))
                    if rule is not None:
                        if rule.kind is FaultKind.STALL:
                            time.sleep(rule.delay)
                        elif rule.kind is FaultKind.DROP:
                            _abort_socket(conn)
                            raise TruncatedStream(
                                f"injected drop at {self.name}"
                            )
                out.sendall(data)
                received += len(data)
                rx.inc(len(data))
                tx.inc(len(data))
                with self._stats_lock:
                    self.bytes_forwarded += len(data)
        self.timeline.record(
            "eof", node=self.name, stream=STREAM_UP,
            session=header.hex_id, nbytes=received,
        )
        self.timeline.record(
            "complete", node=self.name, stream=STREAM_DOWN,
            session=header.hex_id, nbytes=received,
        )
        with self._stats_lock:
            self.sessions_forwarded += 1

    def _retains_ledger(self, header: SessionHeader) -> bool:
        """Multicast sessions keep their completed ledgers.

        A retained ledger is what lets this depot later *replay* the
        payload toward tree descendants (and re-graft orphaned branches
        after a downstream depot dies) without the source resending: a
        new delivery through this depot claims the complete ledger, acks
        the full total upstream, and pumps from local bytes only.
        """
        return header.session_type == SessionType.MULTICAST

    # -- fault-tolerant paths ------------------------------------------------
    def _park_resumable(
        self, conn: socket.socket, header: SessionHeader, resume: ResumeOffset
    ) -> None:
        """Park a fault-tolerant session addressed to this depot."""
        ledger = self._ledger_for(header.hex_id, resume.total)

        def store(data: bytes) -> None:
            with self._held_lock:
                self.held[header.hex_id] = data

        if _receive_into_ledger(self, conn, header, ledger, store):
            if not self._retains_ledger(header):
                self._evict_ledger(header.hex_id)

    def _park_striped(
        self,
        conn: socket.socket,
        header: SessionHeader,
        resume: ResumeOffset,
        stripe: StripeOption,
    ) -> None:
        """Park one striped sublink of a session addressed to this depot."""
        ledger = self._ledger_for(header.hex_id, resume.total, stripe=stripe)
        if ledger.stripe_generation(stripe.index) > 0:
            with self._stats_lock:
                self.sessions_resumed += 1

        def store(data: bytes) -> None:
            with self._held_lock:
                self.held[header.hex_id] = data

        if _receive_stripe_into_ledger(
            self, conn, header, ledger, stripe.index, store
        ):
            if not self._retains_ledger(header):
                self._evict_ledger(header.hex_id)

    def _forward_striped(
        self,
        conn: socket.socket,
        header: SessionHeader,
        resume: ResumeOffset,
        stripe: StripeOption,
    ) -> None:
        """Stage and forward one striped sublink of a session.

        Mirrors :meth:`_forward_resumable` with stripe-local offsets:
        this connection carries stripe ``stripe.index``'s interleaved
        slice, acknowledges that stripe's own watermark, and pumps the
        slice downstream on a dedicated striped connection.  The session
        counts as forwarded when the *last* stripe completes the ledger.
        """
        ledger = self._ledger_for(header.hex_id, resume.total, stripe=stripe)
        if ledger.stripe_generation(stripe.index) > 0:
            with self._stats_lock:
                self.sessions_resumed += 1
        generation, acked = ledger.claim_stripe(stripe.index)
        conn.sendall(RESUME_ACK.pack(acked))
        if acked > 0:
            self.timeline.record(
                "resume", node=self.name, stream=STREAM_UP,
                session=header.hex_id, nbytes=acked,
                detail=f"stripe={stripe.index}",
            )
        goal = ledger.stripe_total(stripe.index)
        progress = _RxProgress(self, header.hex_id, goal, acked)
        next_hop, out_header = self._next_hop(header)
        watch = (
            self.fault_plan.stream_watch(self.name)
            if self.fault_plan is not None
            else None
        )
        pump = _DownstreamPump(self, next_hop, out_header, ledger, stripe=stripe)
        try:
            interrupted = False
            while ledger.stripe_acked(stripe.index) < goal:
                try:
                    data = conn.recv(_IO_CHUNK)
                except OSError:
                    interrupted = True
                    break
                if not data:
                    interrupted = True
                    break
                if watch is not None:
                    rule = watch.advance(len(data))
                    if rule is not None:
                        if rule.kind is FaultKind.STALL:
                            time.sleep(rule.delay)
                        elif rule.kind is FaultKind.DROP:
                            _abort_socket(conn)
                            interrupted = True
                            break
                if not ledger.append_stripe(stripe.index, generation, data):
                    return  # a newer connection took over this stripe
                progress.note(ledger.stripe_acked(stripe.index), len(data))
                with self._stats_lock:
                    self.bytes_forwarded += len(data)
                pump.flush()
            done = ledger.stripe_acked(stripe.index) >= goal
            if done and ledger.stripe_generation(stripe.index) == generation:
                progress.eof()
                pump.finish()
                if ledger.claim_completion():
                    with self._stats_lock:
                        self.sessions_forwarded += 1
                conn.sendall(RESUME_ACK.pack(goal))
                if ledger.complete and not self._retains_ledger(header):
                    self._evict_ledger(header.hex_id)
            elif interrupted:
                raise TruncatedStream(
                    f"session {header.hex_id} stripe {stripe.index} "
                    f"interrupted at {ledger.stripe_acked(stripe.index)}/"
                    f"{goal} bytes; awaiting resume"
                )
        finally:
            pump.close()

    def _forward_resumable(
        self, conn: socket.socket, header: SessionHeader, resume: ResumeOffset
    ) -> None:
        """Stage and forward one fault-tolerant session connection.

        Staged bytes live in the session's ledger, which survives this
        connection: if the upstream drops mid-stream the ledger waits for
        the reconnect, and if the downstream drops the pump replays from
        whatever offset the next hop acknowledges.
        """
        ledger = self._ledger_for(header.hex_id, resume.total)
        generation, acked = ledger.claim()
        conn.sendall(RESUME_ACK.pack(acked))
        if acked > 0:
            self.timeline.record(
                "resume", node=self.name, stream=STREAM_UP,
                session=header.hex_id, nbytes=acked,
            )
        progress = _RxProgress(self, header.hex_id, ledger.total, acked)
        next_hop, out_header = self._next_hop(header)
        watch = (
            self.fault_plan.stream_watch(self.name)
            if self.fault_plan is not None
            else None
        )
        pump = _DownstreamPump(self, next_hop, out_header, ledger)
        try:
            interrupted = False
            while not ledger.complete:
                try:
                    data = conn.recv(_IO_CHUNK)
                except OSError:
                    interrupted = True
                    break
                if not data:
                    interrupted = True
                    break
                if watch is not None:
                    rule = watch.advance(len(data))
                    if rule is not None:
                        if rule.kind is FaultKind.STALL:
                            time.sleep(rule.delay)
                        elif rule.kind is FaultKind.DROP:
                            _abort_socket(conn)
                            interrupted = True
                            break
                if not ledger.append(generation, data):
                    return  # a newer connection took over this session
                progress.note(ledger.acked, len(data))
                with self._stats_lock:
                    self.bytes_forwarded += len(data)
                pump.flush()
            if ledger.complete and ledger.generation == generation:
                progress.eof()
                pump.finish()
                # Count before acking upstream: once the ack is out the
                # whole chain unwinds, and callers joining on it must
                # observe the forward as complete.
                with self._stats_lock:
                    self.sessions_forwarded += 1
                conn.sendall(RESUME_ACK.pack(ledger.total))
                if not self._retains_ledger(header):
                    self._evict_ledger(header.hex_id)
            elif interrupted:
                raise TruncatedStream(
                    f"session {header.hex_id} interrupted at "
                    f"{ledger.acked}/{ledger.total} bytes; awaiting resume"
                )
        finally:
            pump.close()


class _RxProgress:
    """Receiver-side instrumentation shared by the resume-protocol paths.

    Emits the canonical up-stream sequence (``first_byte`` →
    ``progress`` watermarks → ``eof``) plus the received-byte counter
    and, at EOF, the session's duration/throughput series.  Every call
    degrades to a no-op when the server runs with the null registry and
    disabled timeline.
    """

    def __init__(
        self, server: _Server, session: str, total: int, acked: int
    ) -> None:
        self._server = server
        self._session = session
        self._total = total
        self._rx = server.obs.counter(
            "lsl_rx_bytes_total", labels={"node": server.name}
        )
        self._marks = ProgressWatermarks(total)
        self._marks.advance(acked)  # staged bytes crossed these already
        self._seen_first = acked > 0
        self._t0 = time.monotonic()

    def note(self, position: int, nbytes: int) -> None:
        """Record a chunk of ``nbytes`` ending at cumulative ``position``."""
        self._rx.inc(nbytes)
        timeline = self._server.timeline
        if not self._seen_first:
            self._seen_first = True
            timeline.record(
                "first_byte", node=self._server.name, stream=STREAM_UP,
                session=self._session, nbytes=position,
            )
        for fraction, threshold in self._marks.advance(position):
            timeline.record(
                "progress", node=self._server.name, stream=STREAM_UP,
                session=self._session, nbytes=threshold,
                detail=f"{fraction:g}",
            )

    def eof(self) -> None:
        """Record session end plus its duration/throughput series."""
        self._server.timeline.record(
            "eof", node=self._server.name, stream=STREAM_UP,
            session=self._session, nbytes=self._total,
        )
        elapsed = time.monotonic() - self._t0
        labels = {"node": self._server.name}
        self._server.obs.histogram(
            "lsl_session_seconds", labels=labels
        ).observe(elapsed)
        if elapsed > 0:
            self._server.obs.gauge(
                "lsl_session_throughput_bytes_per_sec", labels=labels
            ).set(self._total / elapsed)


def _receive_into_ledger(
    server: _Server,
    conn: socket.socket,
    header: SessionHeader,
    ledger: SessionLedger,
    on_complete,
) -> bool:
    """Shared terminating side of the resume protocol.

    Claims the ledger, replies with the acknowledgement point, appends
    inbound bytes (consulting the server's fault plan), and on completion
    hands the full payload to ``on_complete`` and sends the final ack.
    Returns True when the session completed under this connection.
    """
    generation, acked = ledger.claim()
    conn.sendall(RESUME_ACK.pack(acked))
    if acked > 0:
        server.timeline.record(
            "resume", node=server.name, stream=STREAM_UP,
            session=header.hex_id, nbytes=acked,
        )
    progress = _RxProgress(server, header.hex_id, ledger.total, acked)
    watch = (
        server.fault_plan.stream_watch(server.name)
        if server.fault_plan is not None
        else None
    )
    interrupted = False
    while not ledger.complete:
        try:
            data = conn.recv(_IO_CHUNK)
        except OSError:
            interrupted = True
            break
        if not data:
            interrupted = True
            break
        if watch is not None:
            rule = watch.advance(len(data))
            if rule is not None:
                if rule.kind is FaultKind.STALL:
                    time.sleep(rule.delay)
                elif rule.kind is FaultKind.DROP:
                    _abort_socket(conn)
                    interrupted = True
                    break
        if not ledger.append(generation, data):
            return False  # superseded by a newer connection
        progress.note(ledger.acked, len(data))
    if ledger.complete and ledger.generation == generation:
        progress.eof()
        on_complete(bytes(ledger.data))
        conn.sendall(RESUME_ACK.pack(ledger.total))
        return True
    if interrupted:
        raise TruncatedStream(
            f"session {header.hex_id} interrupted at "
            f"{ledger.acked}/{ledger.total} bytes; awaiting resume"
        )
    return False


def _receive_stripe_into_ledger(
    server: _Server,
    conn: socket.socket,
    header: SessionHeader,
    ledger: SessionLedger,
    stripe_index: int,
    on_complete,
) -> bool:
    """Terminating side of one striped sublink of the resume protocol.

    Claims the stripe, acknowledges its stripe-local watermark, scatters
    inbound bytes into the shared ledger, and — when this connection's
    stripe finishing completes the whole ledger — hands the reassembled
    payload to ``on_complete``.  Returns True when the *ledger* (not
    just this stripe) completed under this connection.
    """
    generation, acked = ledger.claim_stripe(stripe_index)
    conn.sendall(RESUME_ACK.pack(acked))
    if acked > 0:
        server.timeline.record(
            "resume", node=server.name, stream=STREAM_UP,
            session=header.hex_id, nbytes=acked,
            detail=f"stripe={stripe_index}",
        )
    goal = ledger.stripe_total(stripe_index)
    progress = _RxProgress(server, header.hex_id, goal, acked)
    watch = (
        server.fault_plan.stream_watch(server.name)
        if server.fault_plan is not None
        else None
    )
    interrupted = False
    while ledger.stripe_acked(stripe_index) < goal:
        try:
            data = conn.recv(_IO_CHUNK)
        except OSError:
            interrupted = True
            break
        if not data:
            interrupted = True
            break
        if watch is not None:
            rule = watch.advance(len(data))
            if rule is not None:
                if rule.kind is FaultKind.STALL:
                    time.sleep(rule.delay)
                elif rule.kind is FaultKind.DROP:
                    _abort_socket(conn)
                    interrupted = True
                    break
        if not ledger.append_stripe(stripe_index, generation, data):
            return False  # superseded by a newer connection
        progress.note(ledger.stripe_acked(stripe_index), len(data))
    done = ledger.stripe_acked(stripe_index) >= goal
    if done and ledger.stripe_generation(stripe_index) == generation:
        progress.eof()
        completed = ledger.claim_completion()
        if completed:
            on_complete(bytes(ledger.data))
        conn.sendall(RESUME_ACK.pack(goal))
        return completed
    if interrupted:
        raise TruncatedStream(
            f"session {header.hex_id} stripe {stripe_index} interrupted "
            f"at {ledger.stripe_acked(stripe_index)}/{goal} bytes; "
            f"awaiting resume"
        )
    return False


class SinkServer(_Server):
    """Terminates LSL sessions; stores payloads keyed by session id."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str | None = None,
        fault_plan: FaultPlan | None = None,
        registry: Registry | None = None,
        timeline: SessionTimeline | None = None,
    ) -> None:
        self.payloads: dict[str, bytes] = {}
        self.headers: dict[str, SessionHeader] = {}
        self._lock = threading.Lock()
        self.errors: list = []
        self._ledgers: dict[str, SessionLedger] = {}
        self._ledger_lock = threading.Lock()
        super().__init__(
            host,
            port,
            name=name,
            fault_plan=fault_plan,
            registry=registry,
            timeline=timeline,
        )

    def handle(self, conn: socket.socket) -> None:
        """Terminate one session and store its payload."""
        header = read_header(conn)
        self.timeline.record(
            "header_rx", node=self.name, stream=STREAM_UP,
            session=header.hex_id,
        )
        self.obs.counter(
            "lsl_sessions_total", labels={"node": self.name}
        ).inc()
        resume = header.option(ResumeOffset)
        if header.option(StripeOption) is not None and resume is None:
            raise ValueError(
                f"striped session {header.hex_id} lacks a resume option"
            )
        if resume is not None:
            self._receive_resumable(conn, header, resume)
            return
        watch = (
            self.fault_plan.stream_watch(self.name)
            if self.fault_plan is not None
            else None
        )
        rx = self.obs.counter(
            "lsl_rx_bytes_total", labels={"node": self.name}
        )
        chunks = bytearray()
        while True:
            data = conn.recv(_IO_CHUNK)
            if not data:
                break
            if watch is not None:
                rule = watch.advance(len(data))
                if rule is not None:
                    if rule.kind is FaultKind.STALL:
                        time.sleep(rule.delay)
                    elif rule.kind is FaultKind.DROP:
                        _abort_socket(conn)
                        raise TruncatedStream(f"injected drop at {self.name}")
            if not chunks:
                self.timeline.record(
                    "first_byte", node=self.name, stream=STREAM_UP,
                    session=header.hex_id, nbytes=len(data),
                )
            chunks += data
            rx.inc(len(data))
        self.timeline.record(
            "eof", node=self.name, stream=STREAM_UP,
            session=header.hex_id, nbytes=len(chunks),
        )
        with self._lock:
            self.payloads[header.hex_id] = bytes(chunks)
            self.headers[header.hex_id] = header

    def _receive_resumable(
        self, conn: socket.socket, header: SessionHeader, resume: ResumeOffset
    ) -> None:
        stripe = header.option(StripeOption)
        stripes = 1 if stripe is None else stripe.count
        block = 16 << 10 if stripe is None else stripe.block
        with self._ledger_lock:
            ledger = self._ledgers.get(header.hex_id)
            if ledger is None:
                ledger = SessionLedger(resume.total, stripes=stripes,
                                       block=block)
                self._ledgers[header.hex_id] = ledger
            elif not ledger.matches(stripes, block):
                raise ValueError(
                    f"session {header.hex_id} stripe layout mismatch: "
                    f"ledger x{ledger.stripes}/block {ledger.block}, "
                    f"connection x{stripes}/block {block}"
                )

        def store(data: bytes) -> None:
            with self._lock:
                self.payloads[header.hex_id] = data
                self.headers[header.hex_id] = header

        if stripe is None:
            done = _receive_into_ledger(self, conn, header, ledger, store)
        else:
            done = _receive_stripe_into_ledger(
                self, conn, header, ledger, stripe.index, store
            )
        if done:
            with self._ledger_lock:
                self._ledgers.pop(header.hex_id, None)

    def staged_bytes(self, session_id_hex: str) -> int:
        """Bytes durably received for an (incomplete) session."""
        with self._ledger_lock:
            ledger = self._ledgers.get(session_id_hex)
        return ledger.acked if ledger is not None else 0

    def wait_for(self, session_id_hex: str, timeout: float = 10.0) -> bytes:
        """Block until the payload for a session arrives (tests helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if session_id_hex in self.payloads:
                    return self.payloads[session_id_hex]
            time.sleep(0.005)
        raise TimeoutError(f"session {session_id_hex} never arrived")


def _stripe_slice(
    payload: bytes, index: int, count: int, block: int
) -> bytes:
    """Stripe ``index``'s interleaved slice of ``payload``.

    The gather mirror of :meth:`SessionLedger.append_stripe`'s scatter:
    every ``block``-sized block ``j`` with ``j % count == index``, in
    order.
    """
    out = bytearray()
    for start in range(index * block, len(payload), count * block):
        out += payload[start : start + block]
    return bytes(out)


@dataclass
class SendReport:
    """Outcome of a fault-tolerant :func:`send_session`.

    Attributes
    ----------
    attempts:
        Connections opened (``stripes`` = no failure: one per sublink).
    retransmitted:
        Payload bytes this source sent more than once.
    payload_bytes:
        Total payload size.
    """

    attempts: int = 0
    retransmitted: int = 0
    payload_bytes: int = 0
    high_water: int = 0


def send_session(
    payload: bytes,
    header: SessionHeader,
    first_hop: tuple[str, int],
    chunk_size: int = _IO_CHUNK,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    source_name: str = "source",
    registry: Registry | None = None,
    timeline: SessionTimeline | None = None,
    stripes: int = 1,
    stripe_block: int = 16 << 10,
) -> SendReport | None:
    """Open a session toward ``first_hop`` and stream the payload.

    ``first_hop`` is the first depot of the loose source route, or the
    sink itself for a direct session.

    With ``retry`` given (or a :class:`~repro.lsl.options.ResumeOffset`
    option already on the header) the send is *fault-tolerant*: the
    header gains a resume option carrying the payload length, each
    connection starts with the receiver's acknowledgement point and ends
    with a final acknowledgement, and failures are retried with backoff,
    resuming from the acknowledged byte.  Returns a :class:`SendReport`
    in that mode, ``None`` for a legacy fire-and-forget send.

    With ``stripes > 1`` the session runs as that many parallel striped
    sublinks (always fault-tolerant): the per-stripe resume handshakes
    happen serially — one blocking header+ack round trip each — and the
    interleaved slices then stream concurrently, each stripe retrying
    and resuming at its own watermark.

    Raises
    ------
    RetryExhausted
        The fault-tolerant path failed more times than the policy allows.
    """
    check_positive_int("chunk_size", chunk_size)
    check_positive_int("stripes", stripes)
    check_positive_int("stripe_block", stripe_block)
    obs = registry if registry is not None else NULL_REGISTRY
    tl = timeline if timeline is not None else DISABLED_TIMELINE
    tx = obs.counter("lsl_tx_bytes_total", labels={"node": source_name})
    resume = header.option(ResumeOffset)
    if stripes > 1:
        if header.option(StripeOption) is not None:
            raise ValueError(
                "send_session attaches stripe options itself; the header "
                "must not already carry one"
            )
        if resume is None:
            header = header.with_options(
                header.options + (ResumeOffset(total=len(payload)),)
            )
        elif resume.total != len(payload):
            raise ValueError(
                f"resume option total {resume.total} != payload "
                f"{len(payload)} bytes"
            )
        return _striped_send(
            payload, header, first_hop, chunk_size,
            retry or RetryPolicy(), fault_plan, source_name, obs, tl,
            stripes, stripe_block,
        )
    if retry is None and resume is None:
        # legacy fire-and-forget: no resume protocol, but the initial
        # connect still gets the default policy's timeout and budget
        with _connect_with_retry(first_hop, RetryPolicy()) as sock:
            tl.record(
                "connect", node=source_name, stream=STREAM_DOWN,
                session=header.hex_id,
            )
            tl.record(
                "header_tx", node=source_name, stream=STREAM_DOWN,
                session=header.hex_id,
            )
            encoded = header.encode()
            if fault_plan is not None:
                encoded = fault_plan.corrupt_header(source_name, encoded)
            sock.sendall(encoded)
            for off in range(0, len(payload), chunk_size):
                chunk = payload[off : off + chunk_size]
                sock.sendall(chunk)
                tx.inc(len(chunk))
        tl.record(
            "complete", node=source_name, stream=STREAM_DOWN,
            session=header.hex_id, nbytes=len(payload),
        )
        return None

    policy = retry or RetryPolicy()
    if resume is None:
        header = header.with_options(
            header.options + (ResumeOffset(total=len(payload)),)
        )
    elif resume.total != len(payload):
        raise ValueError(
            f"resume option total {resume.total} != payload "
            f"{len(payload)} bytes"
        )
    report = SendReport(payload_bytes=len(payload))
    attempts = 0
    t0 = time.monotonic()
    while True:
        try:
            _attempt_resumable_send(
                payload, header, first_hop, chunk_size, policy,
                fault_plan, source_name, report, obs, tl,
            )
            report.attempts = attempts + 1
            tl.record(
                "complete", node=source_name, stream=STREAM_DOWN,
                session=header.hex_id, nbytes=len(payload),
            )
            elapsed = time.monotonic() - t0
            obs.histogram(
                "lsl_session_seconds", labels={"node": source_name}
            ).observe(elapsed)
            if elapsed > 0:
                obs.gauge(
                    "lsl_session_throughput_bytes_per_sec",
                    labels={"node": source_name},
                ).set(len(payload) / elapsed)
            return report
        except (ConnectionError, OSError) as exc:
            attempts += 1
            if attempts > policy.max_retries:
                tl.record(
                    "error", node=source_name, stream=STREAM_DOWN,
                    session=header.hex_id, detail=str(exc),
                )
                raise RetryExhausted(
                    f"session {header.hex_id} failed after "
                    f"{policy.max_retries} retries: {exc}"
                ) from exc
            time.sleep(policy.delay(attempts - 1))


def _attempt_resumable_send(
    payload: bytes,
    header: SessionHeader,
    first_hop: tuple[str, int],
    chunk_size: int,
    policy: RetryPolicy,
    fault_plan: FaultPlan | None,
    source_name: str,
    report: SendReport,
    obs: Registry = NULL_REGISTRY,
    tl: SessionTimeline = DISABLED_TIMELINE,
) -> None:
    """One connection's worth of the resume protocol, source side."""
    tx = obs.counter("lsl_tx_bytes_total", labels={"node": source_name})
    with socket.create_connection(
        first_hop, timeout=policy.connect_timeout
    ) as sock:
        sock.settimeout(policy.io_timeout)
        _cap_buffers(sock)
        tl.record(
            "connect", node=source_name, stream=STREAM_DOWN,
            session=header.hex_id,
        )
        tl.record(
            "header_tx", node=source_name, stream=STREAM_DOWN,
            session=header.hex_id,
        )
        encoded = header.encode()
        if fault_plan is not None:
            encoded = fault_plan.corrupt_header(source_name, encoded)
        sock.sendall(encoded)
        start = RESUME_ACK.unpack(_read_exact(sock, RESUME_ACK.size))[0]
        if start > len(payload):
            raise ValueError(
                f"peer acknowledged {start} bytes of a "
                f"{len(payload)}-byte payload"
            )
        if start > 0:
            tl.record(
                "resume", node=source_name, stream=STREAM_DOWN,
                session=header.hex_id, nbytes=start,
            )
        previous_high = report.high_water
        for off in range(start, len(payload), chunk_size):
            chunk = payload[off : off + chunk_size]
            sock.sendall(chunk)
            tx.inc(len(chunk))
            end = off + len(chunk)
            report.retransmitted += max(0, min(end, previous_high) - off)
            report.high_water = max(report.high_water, end)
        sock.shutdown(socket.SHUT_WR)
        final = RESUME_ACK.unpack(_read_exact(sock, RESUME_ACK.size))[0]
        if final != len(payload):
            raise TruncatedStream(
                f"sink acknowledged {final} of {len(payload)} bytes"
            )


class _StripeWorker:
    """Source side of one striped sublink.

    :meth:`handshake` (run serially by :func:`_striped_send`) opens the
    connection and performs the header+ack round trip; :meth:`run` (one
    thread per stripe) streams the slice from the acknowledged offset,
    transparently re-handshaking on failure under the retry policy.
    """

    def __init__(
        self,
        payload_slice: bytes,
        header: SessionHeader,
        first_hop: tuple[str, int],
        chunk_size: int,
        policy: RetryPolicy,
        fault_plan: FaultPlan | None,
        source_name: str,
        obs: Registry,
        tl: SessionTimeline,
        index: int,
    ) -> None:
        self._slice = payload_slice
        self._header = header
        self._first_hop = first_hop
        self._chunk = chunk_size
        self._policy = policy
        self._fault_plan = fault_plan
        self._source_name = source_name
        self._tl = tl
        self._tx = obs.counter(
            "lsl_tx_bytes_total", labels={"node": source_name}
        )
        self.index = index
        self.connects = 0
        self.retransmitted = 0
        self.high_water = 0
        self.error: Exception | None = None
        self._sock: socket.socket | None = None
        self._start = 0
        self._failures = 0

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _failure(self, exc: Exception) -> None:
        self._drop()
        self._failures += 1
        if self._failures > self._policy.max_retries:
            raise RetryExhausted(
                f"session {self._header.hex_id} stripe {self.index} failed "
                f"after {self._policy.max_retries} retries: {exc}"
            ) from exc
        time.sleep(self._policy.delay(self._failures - 1))

    def _connect(self) -> None:
        sock = socket.create_connection(
            self._first_hop, timeout=self._policy.connect_timeout
        )
        try:
            sock.settimeout(self._policy.io_timeout)
            _cap_buffers(sock)
            self._tl.record(
                "connect", node=self._source_name, stream=STREAM_DOWN,
                session=self._header.hex_id,
            )
            self._tl.record(
                "header_tx", node=self._source_name, stream=STREAM_DOWN,
                session=self._header.hex_id,
            )
            encoded = self._header.encode()
            if self._fault_plan is not None:
                encoded = self._fault_plan.corrupt_header(
                    self._source_name, encoded
                )
            sock.sendall(encoded)
            ack = RESUME_ACK.unpack(_read_exact(sock, RESUME_ACK.size))[0]
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        if ack > len(self._slice):
            try:
                sock.close()
            except OSError:
                pass
            raise ValueError(
                f"stripe {self.index} peer acknowledged {ack} bytes of a "
                f"{len(self._slice)}-byte slice"
            )
        if ack > 0:
            self._tl.record(
                "resume", node=self._source_name, stream=STREAM_DOWN,
                session=self._header.hex_id, nbytes=ack,
                detail=f"stripe={self.index}",
            )
        self._sock = sock
        self._start = ack
        self.connects += 1

    def handshake(self) -> None:
        """Connect and complete the header+ack round trip (with retry)."""
        while self._sock is None:
            try:
                self._connect()
            except (ConnectionError, OSError) as exc:
                self._failure(exc)

    def run(self) -> None:
        """Stream the slice to completion; stores failures in ``error``."""
        try:
            while True:
                try:
                    if self._sock is None:
                        self._connect()
                    sock = self._sock
                    for off in range(self._start, len(self._slice),
                                     self._chunk):
                        chunk = self._slice[off : off + self._chunk]
                        sock.sendall(chunk)
                        self._tx.inc(len(chunk))
                        end = off + len(chunk)
                        self.retransmitted += max(
                            0, min(end, self.high_water) - off
                        )
                        self.high_water = max(self.high_water, end)
                    sock.shutdown(socket.SHUT_WR)
                    final = RESUME_ACK.unpack(
                        _read_exact(sock, RESUME_ACK.size)
                    )[0]
                    if final != len(self._slice):
                        raise TruncatedStream(
                            f"stripe {self.index} acknowledged {final} of "
                            f"{len(self._slice)} bytes"
                        )
                    return
                except (ConnectionError, OSError) as exc:
                    self._failure(exc)
        except Exception as exc:
            # held for _striped_send to re-raise after every thread joins
            self.error = exc
            self._tl.record(
                "error", node=self._source_name, stream=STREAM_DOWN,
                session=self._header.hex_id,
                detail=f"stripe={self.index}: {exc}",
            )
        finally:
            self._drop()


def _striped_send(
    payload: bytes,
    header: SessionHeader,
    first_hop: tuple[str, int],
    chunk_size: int,
    policy: RetryPolicy,
    fault_plan: FaultPlan | None,
    source_name: str,
    obs: Registry,
    tl: SessionTimeline,
    stripes: int,
    block: int,
) -> SendReport:
    """Drive one session over N striped sublinks (source side)."""
    workers = [
        _StripeWorker(
            _stripe_slice(payload, k, stripes, block),
            header.with_options(
                header.options
                + (StripeOption(index=k, count=stripes, block=block),)
            ),
            first_hop, chunk_size, policy, fault_plan, source_name,
            obs, tl, k,
        )
        for k in range(stripes)
    ]
    t0 = time.monotonic()
    try:
        # Serialized handshakes: one blocking header+ack round trip per
        # stripe, the setup cost the striped transfer-time model prices.
        for worker in workers:
            worker.handshake()
    except BaseException:
        for worker in workers:
            worker._drop()
        raise
    threads = [
        threading.Thread(
            target=worker.run,
            name=f"lsl:{source_name}:stripe{worker.index}",
            daemon=True,
        )
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    errors = [w.error for w in workers if w.error is not None]
    if errors:
        # each failed stripe already recorded its own "error" event
        raise errors[0]
    report = SendReport(
        attempts=sum(w.connects for w in workers),
        retransmitted=sum(w.retransmitted for w in workers),
        payload_bytes=len(payload),
        high_water=sum(w.high_water for w in workers),
    )
    tl.record(
        "complete", node=source_name, stream=STREAM_DOWN,
        session=header.hex_id, nbytes=len(payload),
        detail=f"stripes={stripes}",
    )
    elapsed = time.monotonic() - t0
    obs.histogram(
        "lsl_session_seconds", labels={"node": source_name}
    ).observe(elapsed)
    if elapsed > 0:
        obs.gauge(
            "lsl_session_throughput_bytes_per_sec",
            labels={"node": source_name},
        ).set(len(payload) / elapsed)
    return report


def fetch_pickup(
    depot: tuple[str, int], session_id: bytes, timeout: float = 10.0
) -> bytes:
    """Claim an asynchronously parked session from a depot.

    Sends a :attr:`~repro.lsl.header.SessionType.PICKUP` header carrying
    the session id and reads the stored payload until EOF.
    """
    from repro.lsl.async_session import pickup_header

    header = pickup_header(depot[0], depot[1], session_id)
    with socket.create_connection(depot, timeout=timeout) as sock:
        sock.sendall(header.encode())
        sock.shutdown(socket.SHUT_WR)
        chunks = bytearray()
        while True:
            data = sock.recv(_IO_CHUNK)
            if not data:
                break
            chunks += data
    return bytes(chunks)

"""Mathis model tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.mathis import MATHIS_C, mathis_rate, mathis_window
from repro.util.validation import ValidationError


class TestMathisRate:
    def test_formula(self):
        # C * 1460 / (0.1 * sqrt(1e-4)) = C * 1460 / 0.001
        expected = MATHIS_C * 1460 / 0.001
        assert mathis_rate(1460, 0.1, 1e-4) == pytest.approx(expected)

    def test_zero_loss_unbounded(self):
        assert mathis_rate(1460, 0.1, 0.0) == math.inf

    def test_inverse_rtt(self):
        r1 = mathis_rate(1460, 0.05, 1e-4)
        r2 = mathis_rate(1460, 0.10, 1e-4)
        assert r1 == pytest.approx(2 * r2)

    def test_inverse_sqrt_loss(self):
        r1 = mathis_rate(1460, 0.1, 1e-4)
        r2 = mathis_rate(1460, 0.1, 4e-4)
        assert r1 == pytest.approx(2 * r2)

    def test_halving_the_path_doubles_each_half(self):
        """The steady-state root of the logistical effect: a depot at the
        midpoint lets each half run twice as fast (same loss per half
        would further help; here loss splits evenly)."""
        whole = mathis_rate(1460, 0.08, 1e-4)
        half = mathis_rate(1460, 0.04, 1e-4)
        assert half == pytest.approx(2 * whole)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            mathis_rate(0, 0.1, 1e-4)
        with pytest.raises(ValidationError):
            mathis_rate(1460, 0, 1e-4)
        with pytest.raises(ValidationError):
            mathis_rate(1460, 0.1, 2.0)

    @given(
        st.floats(min_value=1e-3, max_value=1.0),
        st.floats(min_value=1e-6, max_value=0.1),
    )
    def test_positive_for_valid_domain(self, rtt, p):
        assert mathis_rate(1460, rtt, p) > 0


class TestMathisWindow:
    def test_rate_times_rtt_equals_mean_window(self):
        rtt, p = 0.1, 1e-4
        rate = mathis_rate(1460, rtt, p)
        window = mathis_window(1460, p)
        assert window == pytest.approx(rate * rtt, rel=1e-9)

    def test_zero_loss_unbounded(self):
        assert mathis_window(1460, 0.0) == math.inf

    def test_window_independent_of_rtt(self):
        # only loss sets the sawtooth amplitude
        assert mathis_window(1460, 1e-3) == mathis_window(1460, 1e-3)

"""Unit-suffix conflicts for RPR006; line numbers asserted."""


def mix_sizes(total_bytes: int, size_mb: float) -> float:
    return total_bytes + size_mb


def compare_times(elapsed_s: float, timeout_ms: float) -> bool:
    return elapsed_s > timeout_ms


def accumulate(budget_ms: float, delta_s: float) -> float:
    budget_ms += delta_s
    return budget_ms

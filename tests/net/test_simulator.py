"""Integration tests for the transfer runner — including the paper's
qualitative claims about the logistical effect."""

import pytest

from repro.net.simulator import NetworkSimulator, TransferResult, choose_dt, speedup
from repro.net.tcp import TcpConfig
from repro.net.topology import PathSpec
from repro.util.units import mb


@pytest.fixture(scope="module")
def sim():
    return NetworkSimulator(seed=7)


# Paths modelled on the paper's Section 3 testbed (RTTs from its table).
UCSB_UF = PathSpec.from_mbit(87, 400, loss_rate=1e-4, name="UCSB-UF")
UCSB_HOUSTON = PathSpec.from_mbit(68, 400, loss_rate=7e-5, name="UCSB-Houston")
HOUSTON_UF = PathSpec.from_mbit(34, 400, loss_rate=3e-5, name="Houston-UF")


class TestChooseDt:
    def test_scales_with_min_rtt(self):
        fast = PathSpec(rtt=0.02, bandwidth=1e7)
        slow = PathSpec(rtt=0.2, bandwidth=1e7)
        assert choose_dt([fast, slow]) == pytest.approx(0.001)

    def test_clamped_low(self):
        p = PathSpec(rtt=1e-4, bandwidth=1e7)
        assert choose_dt([p]) == 1e-4

    def test_clamped_high(self):
        p = PathSpec(rtt=10.0, bandwidth=1e7)
        assert choose_dt([p]) == 0.01


class TestTransferResult:
    def test_bandwidth_derived(self):
        r = TransferResult(size=1_000_000, duration=2.0)
        assert r.bandwidth == 500_000
        assert r.bandwidth_mbit == pytest.approx(4.0)


class TestRunDirect:
    def test_returns_single_trace(self, sim):
        r = sim.run_direct(UCSB_UF, mb(1))
        assert len(r.traces) == 1
        assert r.traces[0].final_acked == pytest.approx(mb(1), rel=0.01)

    def test_no_trace_when_disabled(self, sim):
        r = sim.run_direct(UCSB_UF, mb(1), record_trace=False)
        assert r.traces == []

    def test_duration_positive_and_sane(self, sim):
        r = sim.run_direct(UCSB_UF, mb(1))
        # at least the handshake plus wire time
        assert r.duration > UCSB_UF.rtt
        assert r.duration < 60


class TestRunRelay:
    def test_two_traces_for_one_depot(self, sim):
        r = sim.run_relay([UCSB_HOUSTON, HOUSTON_UF], mb(1))
        assert len(r.traces) == 2
        assert len(r.depot_peaks) == 1

    def test_sublink_traces_conserve_bytes(self, sim):
        r = sim.run_relay([UCSB_HOUSTON, HOUSTON_UF], mb(2))
        for tr in r.traces:
            assert tr.final_acked == pytest.approx(mb(2), rel=0.01)

    def test_custom_depot_capacity_respected(self, sim):
        r = sim.run_relay(
            [UCSB_HOUSTON, HOUSTON_UF], mb(8), depot_capacities=[1 << 20]
        )
        assert r.depot_peaks[0] <= (1 << 20) + 1e-6


class TestLogisticalEffect:
    """The paper's core empirical claims, as simulator invariants."""

    def test_segmented_path_beats_direct_at_large_sizes(self, sim):
        d = sim.run_direct(UCSB_UF, mb(64), record_trace=False)
        r = sim.run_relay([UCSB_HOUSTON, HOUSTON_UF], mb(64), record_trace=False)
        assert r.bandwidth > d.bandwidth

    def test_speedup_grows_then_saturates(self, sim):
        """Bandwidth grows with transfer size toward a steady state
        (Figures 2 and 3: 'the largest transfers ... are effectively the
        steady state')."""
        bws = [
            sim.run_direct(UCSB_UF, mb(s), record_trace=False).bandwidth
            for s in (1, 4, 16, 64)
        ]
        assert bws == sorted(bws)

    def test_lsl_reaches_high_bandwidth_at_smaller_sizes(self, sim):
        """'connections segmented by the depot reach higher bandwidths
        with smaller transfer sizes'"""
        d16 = sim.run_direct(UCSB_UF, mb(16), record_trace=False)
        r16 = sim.run_relay(
            [UCSB_HOUSTON, HOUSTON_UF], mb(16), record_trace=False
        )
        assert r16.bandwidth > d16.bandwidth

    def test_rtt_inverse_throughput(self, sim):
        """TCP performance varies inversely with RTT (steady state)."""
        short = PathSpec.from_mbit(30, 400, loss_rate=1e-4)
        long = PathSpec.from_mbit(120, 400, loss_rate=1e-4)
        b_short = sim.run_direct(short, mb(32), record_trace=False).bandwidth
        b_long = sim.run_direct(long, mb(32), record_trace=False).bandwidth
        assert b_short > 1.5 * b_long


class TestCompareAndSpeedup:
    def test_compare_shapes(self, sim):
        d, r = sim.compare(
            UCSB_UF,
            [UCSB_HOUSTON, HOUSTON_UF],
            mb(1),
            iterations=3,
            record_trace=False,
        )
        assert len(d) == 3 and len(r) == 3

    def test_speedup_definition(self):
        d = [TransferResult(size=100, duration=2.0)]  # 50 B/s
        r = [TransferResult(size=100, duration=1.0)]  # 100 B/s
        assert speedup(d, r) == pytest.approx(2.0)

    def test_speedup_empty_raises(self):
        with pytest.raises(ValueError):
            speedup([], [TransferResult(size=1, duration=1.0)])

    def test_deterministic_loss_reproducible(self):
        a = NetworkSimulator(seed=5).run_direct(UCSB_UF, mb(4), record_trace=False)
        b = NetworkSimulator(seed=5).run_direct(UCSB_UF, mb(4), record_trace=False)
        assert a.duration == b.duration

    def test_random_loss_reproducible_by_seed(self):
        cfg = TcpConfig(loss_mode="random")
        a = NetworkSimulator(config=cfg, seed=5).run_direct(
            UCSB_UF, mb(4), record_trace=False
        )
        b = NetworkSimulator(config=cfg, seed=5).run_direct(
            UCSB_UF, mb(4), record_trace=False
        )
        assert a.duration == b.duration

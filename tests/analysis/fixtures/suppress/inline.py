"""Inline suppressions mute findings but keep them counted."""

import socket


def dial(host: str, port: int) -> socket.socket:
    return socket.create_connection((host, port))  # rpr: disable=RPR010


def dial_any(host: str, port: int) -> socket.socket:
    return socket.create_connection((host, port))  # rpr: disable

"""One TCP transfer, stepped in fluid time.

A :class:`FluidTcpFlow` moves bytes from an *upstream* store to a
*downstream* store across one :class:`~repro.net.topology.PathSpec`,
governed by a :class:`~repro.net.tcp.TcpState`.  Delivery and
acknowledgement are delayed by the path's one-way latency through simple
delay lines, so the sequence-number-versus-time traces (the paper's
Figures 4 and 5) carry the correct time offsets between chained sublinks.

Store interfaces
----------------
Upstream stores expose ``available`` (bytes ready to send) and
``take(n)``; downstream stores expose ``free_space``, ``reserve(n)`` (claim
space for in-flight data) and ``commit(n)`` (data arrived).  Three
implementations exist: :class:`FileSource` (the sending application),
:class:`SinkBuffer` (the receiving application), and
:class:`~repro.net.depot_sim.DepotBuffer` (both at once).
"""

from __future__ import annotations

import math
from collections import deque

from repro.net.tcp import TcpConfig, TcpState
from repro.net.topology import PathSpec
from repro.util.rng import RngStream
from repro.util.validation import check_non_negative, check_positive


class FileSource:
    """The sending application: ``size`` bytes, all available immediately."""

    def __init__(self, size: int) -> None:
        check_positive("size", size)
        self.size = int(size)
        self._remaining = float(size)

    @property
    def available(self) -> float:
        """Bytes not yet handed to the first sublink."""
        return self._remaining

    def take(self, n: float) -> None:
        """Remove ``n`` bytes handed to the first sublink."""
        if n > self._remaining + 1e-9:
            raise ValueError(f"take({n}) exceeds remaining {self._remaining}")
        self._remaining = max(0.0, self._remaining - n)

    def refund(self, n: float) -> None:
        """Return bytes lost on a failed sublink so they can be resent."""
        check_non_negative("refund", n)
        self._remaining = min(float(self.size), self._remaining + n)


class SinkBuffer:
    """The receiving application: unbounded, counts delivered bytes."""

    def __init__(self) -> None:
        self.received: float = 0.0
        self._reserved: float = 0.0

    @property
    def free_space(self) -> float:
        return math.inf

    def reserve(self, n: float) -> None:
        """Claim space for in-flight bytes (unbounded here)."""
        self._reserved += n

    def commit(self, n: float) -> None:
        """Record arrived bytes as delivered to the application."""
        self._reserved = max(0.0, self._reserved - n)
        self.received += n

    def release(self, n: float) -> None:
        """Drop a reservation for in-flight bytes lost to a failure."""
        self._reserved = max(0.0, self._reserved - n)

    def rollback(self, n: float) -> None:
        """Forget delivered bytes (a restart-from-scratch recovery)."""
        self.received = max(0.0, self.received - n)


class FluidTcpFlow:
    """One TCP connection moving data between two stores.

    Parameters
    ----------
    path:
        End-to-end path characteristics of this sublink.
    upstream:
        Store data is read from (:class:`FileSource` or a depot).
    downstream:
        Store data is written to (:class:`SinkBuffer` or a depot).
    config:
        TCP model parameters.
    start_time:
        Simulated time at which the connection is opened.  Data flows one
        RTT later (the three-way handshake).
    rng:
        Loss-process stream (only used in ``random`` loss mode).
    record_trace:
        When true, every step appends ``(now, acked_bytes)`` to the trace.
    """

    def __init__(
        self,
        path: PathSpec,
        upstream,
        downstream,
        config: TcpConfig | None = None,
        start_time: float = 0.0,
        rng: RngStream | None = None,
        record_trace: bool = True,
    ) -> None:
        check_non_negative("start_time", start_time)
        self.path = path
        self.upstream = upstream
        self.downstream = downstream
        self.config = config or TcpConfig()
        self.state = TcpState(self.config, path.loss_rate, rng=rng)
        self.start_time = start_time
        self.record_trace = record_trace

        self.sent: float = 0.0
        self.delivered: float = 0.0
        self.acked: float = 0.0
        #: bytes this sublink transmitted more than once (failure recovery)
        self.retransmitted: float = 0.0
        #: chunks in flight: (arrival_time, nbytes)
        self._transit: deque[tuple[float, float]] = deque()
        #: acks in flight back to the sender: (ack_time, nbytes)
        self._acks: deque[tuple[float, float]] = deque()
        self.trace_times: list[float] = []
        self.trace_acked: list[float] = []

    # -- dynamics ----------------------------------------------------------
    @property
    def data_start(self) -> float:
        """Time the first data byte may be sent (after the handshake RTT)."""
        return self.start_time + self.path.rtt

    @property
    def in_flight(self) -> float:
        """Bytes sent but not yet acknowledged."""
        return self.sent - self.acked

    def process_events(self, now: float) -> None:
        """Deliver in-flight data and acknowledgements due by ``now``.

        Must run before :meth:`desired_send` each step so freed window
        and freed downstream space are usable within the step (ACK
        clocking).
        """
        # 1. deliveries reaching the receiver
        while self._transit and self._transit[0][0] <= now:
            arrival, n = self._transit.popleft()
            self.delivered += n
            self.downstream.commit(n)
            self._acks.append((arrival + self.path.one_way_delay, n))
        # 2. acknowledgements reaching the sender
        while self._acks and self._acks[0][0] <= now:
            _, n = self._acks.popleft()
            self.acked += n
            self.state.on_ack(n)

    def desired_send(self, now: float, dt: float) -> float:
        """Bytes this flow would send now, absent link contention.

        Call after :meth:`process_events`.  The wire-rate term uses the
        path's full bandwidth; a contention coordinator may grant less
        via :meth:`commit_send`.
        """
        if now < self.data_start:
            return 0.0
        window = self.state.effective_window(self.path.window_limit)
        can_window = max(0.0, window - self.in_flight)
        return min(
            self.upstream.available,
            can_window,
            self.path.bandwidth * dt,
            self.downstream.free_space,
        )

    def commit_send(self, now: float, amount: float) -> None:
        """Actually transmit ``amount`` bytes (at most the desire)."""
        if amount > 0.0:
            self.upstream.take(amount)
            self.downstream.reserve(amount)
            self.sent += amount
            self._transit.append((now + self.path.one_way_delay, amount))
            self.state.on_send(amount)
        if self.record_trace:
            self.trace_times.append(now)
            self.trace_acked.append(self.acked)

    def step(self, now: float, dt: float) -> float:
        """Advance to time ``now`` over interval ``dt``; return bytes sent."""
        self.process_events(now)
        amount = self.desired_send(now, dt)
        self.commit_send(now, amount)
        return amount

    def inject_failure(
        self,
        now: float,
        restart_delay: float = 0.0,
        resume: bool = True,
        rng: RngStream | None = None,
    ) -> float:
        """Sever this sublink's connection and schedule the reconnect.

        With ``resume`` (the LSL depot-resume protocol) only bytes sent
        but not yet delivered downstream are lost: they are refunded to
        the upstream store and the reconnected flow picks up from the
        delivery point, so recovery cost is proportional to this
        sublink's in-flight data.  Without ``resume`` (a plain TCP
        restart, direct paths only) everything already delivered is
        rolled back and the transfer begins again from byte zero.

        The connection restarts ``restart_delay`` seconds from ``now``
        (the retry backoff) plus the usual handshake RTT, with a fresh
        congestion state.  Returns the bytes that must be retransmitted.
        """
        in_flight_data = sum(n for _, n in self._transit)
        self.downstream.release(in_flight_data)
        self._transit.clear()
        self._acks.clear()
        if resume:
            lost = self.sent - self.delivered
            self.upstream.refund(lost)
            self.sent = self.delivered
            self.acked = self.delivered
            retransmit = lost
        else:
            retransmit = self.sent
            self.downstream.rollback(self.delivered)
            self.upstream.refund(self.sent)
            self.sent = self.delivered = self.acked = 0.0
        self.state = TcpState(self.config, self.path.loss_rate, rng=rng)
        self.start_time = now + restart_delay
        self.retransmitted += retransmit
        return retransmit

    def drain(self, until: float) -> None:
        """Flush remaining in-flight data/acks up to time ``until``.

        Called once the last byte has left the source so completion times
        include the tail latency without further send attempts.
        """
        self.step(until, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FluidTcpFlow({self.path.name or 'path'}, sent={self.sent:.0f}, "
            f"acked={self.acked:.0f}, {self.state!r})"
        )

"""Batched fluid-model transfers stepped as numpy array operations.

The scalar :class:`~repro.net.depot_sim.RelayPipeline` steps one flow at
a time in interpreted Python — fine for a handful of sublinks, far too
slow for campaigns with thousands of concurrent transfers.  This module
steps a whole *batch* of independent relay chains in lockstep: all
chains' sublink-``k`` flows advance together as element-wise operations
on ``float64`` arrays.

The vectorized engine is **not** an approximation.  Chains in a batch
are independent, so stepping them slot-major is a pure reordering of
the scalar per-chain loops, and every arithmetic operation (window
growth, loss sawtooth, store accounting, delay lines) is the identical
IEEE-754 double operation the scalar model performs, applied lane-wise.
``tests/net/test_vectorized_equivalence.py`` pins the two paths to
*exact* equality — durations, traces, depot peaks, retransmission
accounting and per-(node, stream) timeline sequences — over seeded
random topologies and fault plans.  The scalar path remains the
conformance oracle; this path is the speed.

Restrictions: the batch engine supports ``loss_mode="deterministic"``
only (the repeatable sawtooth used by every figure benchmark).  Random
per-packet loss draws one RNG stream per flow and stays on the scalar
path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.net.depot_sim import default_depot_capacity
from repro.net.tcp import TcpConfig
from repro.net.topology import PathSpec
from repro.net.trace import SeqTrace
from repro.util.validation import check_positive

__all__ = ["BatchSpec", "VectorizedBatch"]


@dataclass(frozen=True)
class BatchSpec:
    """One transfer in a batch run.

    Mirrors the arguments of
    :meth:`~repro.net.simulator.NetworkSimulator.run_relay` /
    :meth:`~repro.net.simulator.NetworkSimulator.run_relay_with_faults`:
    ``paths`` (one :class:`PathSpec` per sublink), ``size`` in bytes,
    optional injected ``faults`` with their ``retry`` policy and
    ``resume`` mode, optional per-depot ``depot_capacities`` and
    per-sublink TCP ``configs``.  Give every faulted spec its own
    ``retry`` policy instance: a policy with jittered backoff draws
    from internal state, and sharing one across specs would make the
    delay sequence depend on scheduling order.
    """

    paths: tuple[PathSpec, ...]
    size: int
    faults: tuple = ()
    retry: object | None = None
    resume: bool = True
    depot_capacities: tuple[int, ...] | None = None
    configs: tuple[TcpConfig, ...] | None = None

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError("at least one path is required")
        check_positive("size", self.size)
        if self.configs is not None and len(self.configs) != len(self.paths):
            raise ValueError(
                f"{len(self.paths)} paths need {len(self.paths)} configs, "
                f"got {len(self.configs)}"
            )
        if not self.resume and len(self.paths) > 1:
            raise ValueError(
                "restart-from-source recovery models a plain direct "
                "connection; relays recover with resume=True"
            )
        for fault in self.faults:
            if not (0 <= fault.sublink < len(self.paths)):
                raise ValueError(
                    f"fault targets sublink {fault.sublink} of "
                    f"{len(self.paths)} paths"
                )


class _Ring:
    """Per-lane FIFO delay lines as circular ``(lanes, cap)`` arrays.

    Models the scalar flow's ``_transit``/``_acks`` deques for every
    lane of one sublink slot at once.  Heads are popped in rounds — the
    vector analogue of ``while queue and queue[0][0] <= now`` — so each
    lane's chunk order (and therefore its float accumulation order) is
    exactly the scalar one.
    """

    def __init__(self, lanes: int, cap: int) -> None:
        self.cap = max(4, cap)
        self.t = np.zeros((lanes, self.cap))
        self.n = np.zeros((lanes, self.cap))
        self.head = np.zeros(lanes, dtype=np.int64)
        self.count = np.zeros(lanes, dtype=np.int64)
        #: cheap upper bound on max(count) so pushes skip the full scan
        self._hiwater = 0

    def _grow(self) -> None:
        lanes, cap = self.t.shape
        new_cap = cap * 2
        t = np.zeros((lanes, new_cap))
        n = np.zeros((lanes, new_cap))
        # re-linearise each lane so head moves to column 0
        cols = (self.head[:, None] + np.arange(cap)[None, :]) % cap
        rows = np.arange(lanes)[:, None]
        t[:, :cap] = self.t[rows, cols]
        n[:, :cap] = self.n[rows, cols]
        self.t, self.n, self.cap = t, n, new_cap
        self.head[:] = 0

    def push(self, idx: np.ndarray, times: np.ndarray, amounts: np.ndarray) -> None:
        if idx.size == 0:
            return
        if self._hiwater + 1 > self.cap:
            self._hiwater = int(self.count.max())
            if self._hiwater + 1 > self.cap:
                self._grow()
        tail = (self.head[idx] + self.count[idx]) % self.cap
        self.t[idx, tail] = times
        self.n[idx, tail] = amounts
        self.count[idx] += 1
        self._hiwater += 1

    def head_times(self, idx: np.ndarray) -> np.ndarray:
        return self.t[idx, self.head[idx]]

    def head_amounts(self, idx: np.ndarray) -> np.ndarray:
        return self.n[idx, self.head[idx]]

    def pop(self, idx: np.ndarray) -> None:
        self.head[idx] = (self.head[idx] + 1) % self.cap
        self.count[idx] -= 1

    # -- single-lane helpers (inject/drain paths, called rarely) -----------
    def lane_values(self, lane: int) -> list[tuple[float, float]]:
        out = []
        h, c = int(self.head[lane]), int(self.count[lane])
        for i in range(c):
            j = (h + i) % self.cap
            out.append((float(self.t[lane, j]), float(self.n[lane, j])))
        return out

    def lane_pop_head(self, lane: int) -> tuple[float, float]:
        h = int(self.head[lane])
        value = (float(self.t[lane, h]), float(self.n[lane, h]))
        self.head[lane] = (h + 1) % self.cap
        self.count[lane] -= 1
        return value

    def lane_head_time(self, lane: int) -> float:
        return float(self.t[lane, int(self.head[lane])])

    def lane_len(self, lane: int) -> int:
        return int(self.count[lane])

    def clear_lane(self, lane: int) -> None:
        self.count[lane] = 0


class _Slot:
    """State of sublink position ``k`` across all chains that have it."""

    def __init__(self, lanes: int) -> None:
        z = lambda: np.zeros(lanes)  # noqa: E731 - terse array factory
        self.member = np.zeros(lanes, dtype=bool)
        self.is_last = np.zeros(lanes, dtype=bool)
        # path constants
        self.owd, self.rtt, self.bw, self.wlim = z(), z(), z(), z()
        # tcp constants
        self.mss, self.mss2 = z(), z()
        self.init_cwnd = z()
        self.init_ssthresh = np.full(lanes, math.inf)
        self.loss_spacing = np.full(lanes, math.inf)
        # dynamics
        self.start_time, self.data_start = z(), z()
        self.sent, self.delivered, self.acked = z(), z(), z()
        self.retransmitted = z()
        self.cwnd, self.ssthresh = z(), np.full(lanes, math.inf)
        self.pkts_since_loss, self.losses = z(), z()
        self.transit: _Ring | None = None
        self.acks: _Ring | None = None
        # batch-shape metadata precomputed once construction is complete:
        # member lanes, whether they are uniformly last/relay sublinks,
        # loss-process presence, and the constant per-step wire budget
        self.member_idx: np.ndarray | None = None
        self.uniform_last = True
        self.uniform_relay = True
        self.any_lossy = False
        self.all_lossy = False
        self.all_started = False
        self.wire: np.ndarray | None = None


class _LaneFlowView:
    """Read-only flow facade over one (chain, sublink) lane.

    Exposes exactly what :class:`~repro.net.simulator._TimelineEmitter`
    and :meth:`SeqTrace.from_flow` read from a scalar
    :class:`~repro.net.flow.FluidTcpFlow`.
    """

    __slots__ = ("_batch", "_c", "_k", "path")

    def __init__(self, batch: "VectorizedBatch", c: int, k: int) -> None:
        self._batch, self._c, self._k = batch, c, k
        self.path = batch.chain_paths[c][k]

    @property
    def start_time(self) -> float:
        return float(self._batch.slots[self._k].start_time[self._c])

    @property
    def delivered(self) -> float:
        return float(self._batch.slots[self._k].delivered[self._c])

    @property
    def acked(self) -> float:
        return float(self._batch.slots[self._k].acked[self._c])

    @property
    def trace_times(self) -> list[float]:
        return self._batch.trace_t[self._c][self._k]

    @property
    def trace_acked(self) -> list[float]:
        return self._batch.trace_a[self._c][self._k]


class _LanePipelineView:
    """Pipeline facade for one chain (what the timeline emitter sees)."""

    __slots__ = ("flows", "size")

    def __init__(self, batch: "VectorizedBatch", c: int) -> None:
        self.flows = [
            _LaneFlowView(batch, c, k)
            for k in range(len(batch.chain_paths[c]))
        ]
        self.size = int(batch.sizes[c])


class VectorizedBatch:
    """Lockstep batch of independent relay chains on numpy state.

    Parameters
    ----------
    specs:
        One :class:`BatchSpec` per transfer.
    config:
        Shared TCP parameters (per-spec ``configs`` override).
    dts:
        Per-chain step size (the scalar path's ``choose_dt`` result).
    record_trace:
        Record per-step ``(now, acked)`` per flow (python lists — meant
        for conformance tests, not throughput runs).
    max_time:
        Per-chain simulated-time budget; exceeding it raises, exactly
        like the scalar runners.
    """

    def __init__(
        self,
        specs: list[BatchSpec],
        config: TcpConfig,
        dts: list[float],
        record_trace: bool = False,
        max_time: float = 3600.0,
        record: list[bool] | None = None,
    ) -> None:
        if len(dts) != len(specs):
            raise ValueError("one dt per spec required")
        self.specs = list(specs)
        if record is None:
            record = [record_trace] * len(specs)
        if len(record) != len(specs):
            raise ValueError("one record flag per spec required")
        self.record = np.asarray(record, dtype=bool)
        self.any_record = bool(self.record.any())
        self.max_time = float(max_time)
        lanes = len(specs)
        self.lanes = lanes
        self.chain_paths: list[tuple[PathSpec, ...]] = [s.paths for s in specs]
        self.n_sublinks = np.array([len(s.paths) for s in specs])
        max_k = int(self.n_sublinks.max()) if lanes else 0
        max_d = max(max_k - 1, 0)

        self.sizes = np.array([float(s.size) for s in specs])
        self.remaining = self.sizes.copy()
        self.received = np.zeros(lanes)
        self.now = np.zeros(lanes)
        self.prev_now = np.zeros(lanes)
        self.dt = np.array([float(d) for d in dts])
        self.steps = np.zeros(lanes, dtype=np.int64)
        self.alive = np.ones(lanes, dtype=bool)
        self.aborted = np.zeros(lanes, dtype=bool)
        self.durations = np.zeros(lanes)

        # depot pools
        self.depot_capacity = np.zeros((lanes, max_d))
        self.depot_occ = np.zeros((lanes, max_d))
        self.depot_res = np.zeros((lanes, max_d))
        self.depot_peak = np.zeros((lanes, max_d))

        self.slots: list[_Slot] = [_Slot(lanes) for _ in range(max_k)]
        self.trace_t: list[list[list[float]]] = [
            [[] for _ in s.paths] for s in specs
        ]
        self.trace_a: list[list[list[float]]] = [
            [[] for _ in s.paths] for s in specs
        ]

        for c, spec in enumerate(specs):
            n_depots = len(spec.paths) - 1
            caps = spec.depot_capacities
            if caps is None:
                caps = [
                    default_depot_capacity(spec.paths[i], spec.paths[i + 1])
                    for i in range(n_depots)
                ]
            if len(caps) != n_depots:
                raise ValueError(
                    f"{len(spec.paths)} paths need {n_depots} depot "
                    f"capacities, got {len(caps)}"
                )
            for d, cap in enumerate(caps):
                check_positive("capacity", cap)
                self.depot_capacity[c, d] = float(cap)
            start = 0.0
            for k, path in enumerate(spec.paths):
                slot = self.slots[k]
                cfg = spec.configs[k] if spec.configs is not None else config
                if cfg.loss_mode != "deterministic":
                    raise ValueError(
                        "the vectorized batch supports "
                        "loss_mode='deterministic' only; random loss "
                        "stays on the scalar path"
                    )
                slot.member[c] = True
                slot.is_last[c] = k == len(spec.paths) - 1
                slot.owd[c] = path.one_way_delay
                slot.rtt[c] = path.rtt
                slot.bw[c] = path.bandwidth
                slot.wlim[c] = path.window_limit
                slot.mss[c] = cfg.mss
                slot.mss2[c] = 2.0 * cfg.mss
                slot.init_cwnd[c] = float(cfg.mss * cfg.initial_cwnd_segments)
                slot.init_ssthresh[c] = (
                    float(cfg.initial_ssthresh)
                    if cfg.initial_ssthresh is not None
                    else math.inf
                )
                slot.loss_spacing[c] = (
                    math.inf if path.loss_rate == 0.0 else 1.0 / path.loss_rate
                )
                slot.start_time[c] = start
                slot.data_start[c] = start + path.rtt
                slot.cwnd[c] = slot.init_cwnd[c]
                slot.ssthresh[c] = slot.init_ssthresh[c]
                if k < len(spec.paths) - 1:
                    start += path.rtt + path.one_way_delay

        # delay-line capacity: one chunk per step, alive for one-way-delay
        for k, slot in enumerate(self.slots):
            members = np.flatnonzero(slot.member)
            if members.size:
                depth = np.ceil(
                    slot.owd[members] / self.dt[members]
                ).astype(int)
                cap = int(depth.max()) + 4
            else:
                cap = 4
            slot.transit = _Ring(lanes, cap)
            slot.acks = _Ring(lanes, cap)

        # fault bookkeeping (scalar run_relay_with_faults mirror)
        self.fault_remaining: dict[int, list[int]] = {}
        self.fault_retries_per_sublink: dict[int, dict[int, int]] = {}
        self.fault_retries: dict[int, int] = {}
        for c, spec in enumerate(specs):
            if spec.faults:
                self.fault_remaining[c] = [f.times for f in spec.faults]
                self.fault_retries_per_sublink[c] = {}
                self.fault_retries[c] = 0

        self._has_faults = bool(self.fault_remaining)
        for slot in self.slots:
            m = np.flatnonzero(slot.member)
            slot.member_idx = m
            last = slot.is_last[m]
            slot.uniform_last = bool(last.all()) if m.size else True
            slot.uniform_relay = bool((~last).all()) if m.size else False
            lossy = np.isfinite(slot.loss_spacing[m])
            slot.any_lossy = bool(lossy.any()) if m.size else False
            slot.all_lossy = bool(lossy.all()) if m.size else False
            slot.wire = slot.bw * self.dt

        #: emitters attached per chain (index -> _TimelineEmitter)
        self.emitters: dict[int, object] = {}

    # -- per-chain views ---------------------------------------------------
    def pipeline_view(self, c: int) -> _LanePipelineView:
        """The flow/pipeline facade the timeline emitter observes."""
        return _LanePipelineView(self, c)

    # -- stepping ----------------------------------------------------------
    def _step_slot(self, k: int, alive_all: bool) -> None:
        slot = self.slots[k]
        if alive_all:
            mi = slot.member_idx
        else:
            mi = slot.member_idx[self.alive[slot.member_idx]]
        if mi.size == 0:
            return
        now = self.now
        transit, acks = slot.transit, slot.acks
        # 1. deliveries reaching the receiver (ACK clocking: before sends)
        t_t, t_n = transit.t, transit.n
        t_head, t_count = transit.head, transit.count
        cand = mi[t_count[mi] > 0]
        while cand.size:
            h = t_head[cand]
            ht = t_t[cand, h]
            due = ht <= now[cand]
            didx = cand[due]
            if didx.size == 0:
                break
            if didx.size == cand.size:
                hd, htd = h, ht
            else:
                hd, htd = h[due], ht[due]
            n = t_n[didx, hd]
            slot.delivered[didx] += n
            if slot.uniform_last:
                self.received[didx] += n
            elif slot.uniform_relay:
                self.depot_res[didx, k] = np.maximum(
                    0.0, self.depot_res[didx, k] - n
                )
                self.depot_occ[didx, k] += n
                self.depot_peak[didx, k] = np.maximum(
                    self.depot_peak[didx, k], self.depot_occ[didx, k]
                )
            else:
                last = slot.is_last[didx]
                sink_idx = didx[last]
                self.received[sink_idx] += n[last]
                dep_idx = didx[~last]
                if dep_idx.size:
                    nd = n[~last]
                    self.depot_res[dep_idx, k] = np.maximum(
                        0.0, self.depot_res[dep_idx, k] - nd
                    )
                    self.depot_occ[dep_idx, k] += nd
                    self.depot_peak[dep_idx, k] = np.maximum(
                        self.depot_peak[dep_idx, k],
                        self.depot_occ[dep_idx, k],
                    )
            acks.push(didx, htd + slot.owd[didx], n)
            t_head[didx] = (hd + 1) % transit.cap
            t_count[didx] -= 1
            cand = didx[t_count[didx] > 0]
        # 2. acknowledgements reaching the sender (captured after the
        # transit pushes above, which may have grown the ring arrays)
        a_t, a_n = acks.t, acks.n
        a_head, a_count = acks.head, acks.count
        cand = mi[a_count[mi] > 0]
        while cand.size:
            h = a_head[cand]
            at = a_t[cand, h]
            due = at <= now[cand]
            aidx = cand[due]
            if aidx.size == 0:
                break
            hd = h if aidx.size == cand.size else h[due]
            n = a_n[aidx, hd]
            slot.acked[aidx] += n
            # on_ack: slow start doubles, congestion avoidance is linear
            ss = slot.cwnd[aidx] < slot.ssthresh[aidx]
            if ss.all():
                slot.cwnd[aidx] += n
                over = slot.cwnd[aidx] >= slot.ssthresh[aidx]
                clamp = aidx[over]
                if clamp.size:
                    slot.cwnd[clamp] = slot.ssthresh[clamp]
            else:
                ss_idx = aidx[ss]
                if ss_idx.size:
                    slot.cwnd[ss_idx] += n[ss]
                    over = slot.cwnd[ss_idx] >= slot.ssthresh[ss_idx]
                    clamp = ss_idx[over]
                    slot.cwnd[clamp] = slot.ssthresh[clamp]
                ca_idx = aidx[~ss]
                if ca_idx.size:
                    slot.cwnd[ca_idx] += (
                        slot.mss[ca_idx] * n[~ss] / slot.cwnd[ca_idx]
                    )
            a_head[aidx] = (hd + 1) % acks.cap
            a_count[aidx] -= 1
            cand = aidx[a_count[aidx] > 0]
        # 3. desired send
        if slot.all_started:
            si = mi
        else:
            started = now[mi] >= slot.data_start[mi]
            if started.all():
                si = mi
                if not self._has_faults:
                    # faults reset data_start; without them this latches
                    slot.all_started = True
            else:
                si = mi[started]
        if si.size:
            window = np.minimum(slot.cwnd[si], slot.wlim[si])
            in_flight = slot.sent[si] - slot.acked[si]
            can_window = np.maximum(0.0, window - in_flight)
            avail = (
                self.remaining[si] if k == 0 else self.depot_occ[si, k - 1]
            )
            amount = np.minimum(
                np.minimum(avail, can_window), slot.wire[si]
            )
            if not slot.uniform_last:
                # a chain with a non-last slot k has >= k + 2 sublinks,
                # so depot column k exists whenever this branch is taken
                free = np.maximum(
                    0.0,
                    self.depot_capacity[si, k]
                    - self.depot_occ[si, k]
                    - self.depot_res[si, k],
                )
                if not slot.uniform_relay:
                    free = np.where(slot.is_last[si], math.inf, free)
                amount = np.minimum(amount, free)
            # 4. commit
            pos = amount > 0.0
            if pos.all():
                pi, amt = si, amount
            else:
                pi, amt = si[pos], amount[pos]
            if pi.size:
                if k == 0:
                    self.remaining[pi] = np.maximum(
                        0.0, self.remaining[pi] - amt
                    )
                else:
                    self.depot_occ[pi, k - 1] = np.maximum(
                        0.0, self.depot_occ[pi, k - 1] - amt
                    )
                if slot.uniform_relay:
                    self.depot_res[pi, k] += amt
                elif not slot.uniform_last:
                    dl = ~slot.is_last[pi]
                    dpi = pi[dl]
                    if dpi.size:
                        self.depot_res[dpi, k] += amt[dl]
                slot.sent[pi] += amt
                transit.push(pi, now[pi] + slot.owd[pi], amt)
                # on_send: deterministic sawtooth (at most one event/send)
                if slot.any_lossy:
                    if slot.all_lossy:
                        li, amt_l = pi, amt
                    else:
                        lossy = np.isfinite(slot.loss_spacing[pi])
                        li, amt_l = pi[lossy], amt[lossy]
                    if li.size:
                        slot.pkts_since_loss[li] += amt_l / slot.mss[li]
                        fire = (
                            slot.pkts_since_loss[li]
                            >= slot.loss_spacing[li]
                        )
                        fi = li[fire]
                        if fi.size:
                            slot.pkts_since_loss[fi] -= (
                                slot.loss_spacing[fi]
                            )
                            slot.ssthresh[fi] = np.maximum(
                                slot.cwnd[fi] / 2.0, slot.mss2[fi]
                            )
                            slot.cwnd[fi] = slot.ssthresh[fi]
                            slot.losses[fi] += 1.0
        # 5. traces (conformance runs only)
        if self.any_record:
            for c in mi:
                ci = int(c)
                if self.record[ci]:
                    self.trace_t[ci][k].append(float(now[ci]))
                    self.trace_a[ci][k].append(float(slot.acked[ci]))

    def step_all(self) -> None:
        """Advance every live chain by one step (all slots, in order).

        Dead lanes' clocks advance too (their state is never read again);
        restricting the update to live lanes costs more than it saves.
        """
        np.copyto(self.prev_now, self.now)
        self.now += self.dt
        self.steps += 1
        alive = self.alive
        alive_all = bool(alive.all())
        if alive_all:
            over = self.now > self.max_time
        else:
            over = alive & (self.now > self.max_time)
        if over.any():
            c = int(np.flatnonzero(over)[0])
            raise RuntimeError(
                f"transfer of {int(self.sizes[c])} bytes (batch lane {c}) "
                f"did not complete within {self.max_time}s simulated "
                f"({self.received[c]:.0f} delivered)"
            )
        for k in range(len(self.slots)):
            self._step_slot(k, alive_all)

    # -- failure injection (scalar FluidTcpFlow.inject_failure mirror) -----
    def inject_failure(
        self, c: int, k: int, now: float, restart_delay: float, resume: bool
    ) -> float:
        """Fail sublink ``k`` of chain ``c``; returns bytes to resend.

        Mirrors the scalar ``FluidTcpFlow.inject_failure`` float for
        float: in-flight data is dropped, the sender rewinds to the
        delivered (resume) or zero (restart) point, and congestion
        state is reset as if the TCP connection were replaced.
        """
        slot = self.slots[k]
        in_flight_data = 0.0
        for _, n in slot.transit.lane_values(c):
            in_flight_data = in_flight_data + n
        if not slot.is_last[c]:
            self.depot_res[c, k] = max(0.0, self.depot_res[c, k] - in_flight_data)
        slot.transit.clear_lane(c)
        slot.acks.clear_lane(c)
        if resume:
            lost = float(slot.sent[c] - slot.delivered[c])
            if k == 0:
                self.remaining[c] = min(
                    float(self.sizes[c]), self.remaining[c] + lost
                )
            else:
                self.depot_occ[c, k - 1] += lost
                self.depot_peak[c, k - 1] = max(
                    self.depot_peak[c, k - 1], self.depot_occ[c, k - 1]
                )
            slot.sent[c] = slot.delivered[c]
            slot.acked[c] = slot.delivered[c]
            retransmit = lost
        else:
            retransmit = float(slot.sent[c])
            self.received[c] = max(0.0, self.received[c] - slot.delivered[c])
            self.remaining[c] = min(
                float(self.sizes[c]), self.remaining[c] + slot.sent[c]
            )
            slot.sent[c] = slot.delivered[c] = slot.acked[c] = 0.0
        # fresh congestion state, exactly like replacing the TcpState
        slot.cwnd[c] = slot.init_cwnd[c]
        slot.ssthresh[c] = slot.init_ssthresh[c]
        slot.pkts_since_loss[c] = 0.0
        slot.losses[c] = 0.0
        slot.start_time[c] = now + restart_delay
        slot.data_start[c] = slot.start_time[c] + slot.rtt[c]
        slot.retransmitted[c] += retransmit
        return retransmit

    # -- completion --------------------------------------------------------
    def complete_mask(self) -> np.ndarray:
        """Chains whose last byte reached the sink (half-byte tolerance)."""
        return self.alive & (self.received >= self.sizes - 0.5)

    def refine_completion_time(self, c: int) -> float:
        """Scalar ``RelayPipeline._refine_completion_time`` per lane."""
        now = float(self.now[c])
        if self.record[c] and int(self.steps[c]) >= 2:
            t1, t0 = float(self.now[c]), float(self.prev_now[c])
            excess = self.received[c] - self.sizes[c]
            if excess > 0 and t1 > t0:
                rate = self.received[c] / max(now, float(self.dt[c]))
                if rate > 0:
                    return float(max(t0, now - excess / rate))
        return now

    def drain_chain(self, c: int) -> None:
        """Flush trailing data/acks for chain ``c`` (per-flow ``drain``)."""
        now = float(self.now[c])
        for k in range(int(self.n_sublinks[c])):
            slot = self.slots[k]
            until = now + float(slot.rtt[c])
            transit, acks = slot.transit, slot.acks
            while transit.lane_len(c) and transit.lane_head_time(c) <= until:
                arrival, n = transit.lane_pop_head(c)
                slot.delivered[c] += n
                if slot.is_last[c]:
                    self.received[c] += n
                else:
                    self.depot_res[c, k] = max(0.0, self.depot_res[c, k] - n)
                    self.depot_occ[c, k] += n
                    self.depot_peak[c, k] = max(
                        self.depot_peak[c, k], self.depot_occ[c, k]
                    )
                acks.push(
                    np.array([c]),
                    np.array([arrival + float(slot.owd[c])]),
                    np.array([n]),
                )
            while acks.lane_len(c) and acks.lane_head_time(c) <= until:
                _, n = acks.lane_pop_head(c)
                slot.acked[c] += n
                if slot.cwnd[c] < slot.ssthresh[c]:
                    slot.cwnd[c] += n
                    if slot.cwnd[c] >= slot.ssthresh[c]:
                        slot.cwnd[c] = slot.ssthresh[c]
                else:
                    slot.cwnd[c] += slot.mss[c] * n / slot.cwnd[c]
            if self.record[c]:
                self.trace_t[c][k].append(until)
                self.trace_a[c][k].append(float(slot.acked[c]))

    # -- results -----------------------------------------------------------
    def traces(self, c: int) -> list[SeqTrace]:
        """Per-sublink ack sequence traces for chain ``c``."""
        return [
            SeqTrace(
                times=np.asarray(self.trace_t[c][k], dtype=float),
                acked=np.asarray(self.trace_a[c][k], dtype=float),
                name=self.chain_paths[c][k].name,
            )
            for k in range(int(self.n_sublinks[c]))
        ]

    def total_loss_events(self, c: int) -> int:
        """Loss events summed over chain ``c``'s sublinks."""
        return int(
            sum(
                self.slots[k].losses[c]
                for k in range(int(self.n_sublinks[c]))
            )
        )

    def depot_peaks(self, c: int) -> list[float]:
        """Peak depot occupancy per intermediate hop of chain ``c``."""
        return [
            float(self.depot_peak[c, d])
            for d in range(int(self.n_sublinks[c]) - 1)
        ]

    def per_sublink_retransmitted(self, c: int) -> list[float]:
        """Bytes each sublink of chain ``c`` sent more than once."""
        return [
            float(self.slots[k].retransmitted[c])
            for k in range(int(self.n_sublinks[c]))
        ]

    def max_rtt(self, c: int) -> float:
        """Largest sublink RTT of chain ``c`` (drain horizon)."""
        return max(p.rtt for p in self.chain_paths[c])

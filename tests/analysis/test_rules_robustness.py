"""RPR008/RPR009/RPR010/RPR012 robustness rules against the fixtures."""

from tests.analysis.conftest import hits


def test_bare_except(run_fixture):
    result = run_fixture("robustness")
    assert hits(result, "RPR008") == [("bad_robust.py", 9)]


def test_swallowed_broad_exception(run_fixture):
    result = run_fixture("robustness")
    assert hits(result, "RPR009") == [("bad_robust.py", 16)]


def test_unbounded_sockets(run_fixture):
    result = run_fixture("robustness")
    assert hits(result, "RPR010") == [
        ("bad_robust.py", 21),  # create_connection without timeout
        ("bad_robust.py", 22),  # settimeout(None)
    ]


def test_literal_timeouts(run_fixture):
    result = run_fixture("robustness")
    assert hits(result, "RPR012") == [
        ("bad_robust.py", 27),  # create_connection(..., timeout=10)
        ("bad_robust.py", 28),  # settimeout(30.0)
    ]


def test_handled_paths_are_clean(run_fixture):
    """Specific except clauses, recorded broad excepts and bounded
    connects must all pass."""
    result = run_fixture("robustness")
    assert not any("good_robust" in f.path for f in result.findings)


def test_socket_rule_skips_test_code():
    from pathlib import Path

    from repro.analysis import run_paths

    here = Path(__file__).parent / "fixtures" / "robustness"
    result = run_paths([here])  # scanned in place, under tests/
    assert "RPR010" not in result.counts
    assert "RPR012" not in result.counts
    # the except rules are not test-exempt: sloppy tests hide failures
    assert result.counts["RPR008"] == 1
    assert result.counts["RPR009"] == 1

"""Site catalog tests."""

import pytest

from repro.testbed.sites import (
    UNIVERSITY_SITES,
    Site,
    SiteCatalog,
    host_name,
    site_of_host,
)
from repro.util.rng import RngStream


class TestSite:
    def test_distance_symmetric(self):
        a, b = UNIVERSITY_SITES[0], UNIVERSITY_SITES[1]
        assert a.distance_km(b) == pytest.approx(b.distance_km(a))

    def test_distance_to_self_zero(self):
        a = UNIVERSITY_SITES[0]
        assert a.distance_km(a) == pytest.approx(0.0)

    def test_ucsb_uiuc_distance_plausible(self):
        catalog = SiteCatalog()
        d = catalog.get("ucsb.edu").distance_km(catalog.get("uiuc.edu"))
        assert 2500 < d < 3200  # ~2800 km

    def test_latency_has_floor(self):
        a = UNIVERSITY_SITES[0]
        assert a.one_way_latency(a) == pytest.approx(0.001)

    def test_coast_to_coast_latency_plausible(self):
        """UCSB <-> UF one-way should land near the paper's 87/2 ms RTT."""
        catalog = SiteCatalog()
        lat = catalog.get("ucsb.edu").one_way_latency(catalog.get("ufl.edu"))
        assert 0.025 < lat < 0.055


class TestCatalog:
    def test_contains_papers_sites(self):
        catalog = SiteCatalog()
        for domain in ("ucsb.edu", "uiuc.edu", "ufl.edu", "utk.edu"):
            assert domain in catalog

    def test_large_enough_for_planetlab(self):
        assert len(SiteCatalog()) >= 60

    def test_no_duplicate_domains(self):
        domains = [s.domain for s in SiteCatalog()]
        assert len(domains) == len(set(domains))

    def test_sample_distinct(self):
        catalog = SiteCatalog()
        rng = RngStream(1)
        sites = catalog.sample(20, rng)
        assert len({s.domain for s in sites}) == 20

    def test_sample_reproducible(self):
        catalog = SiteCatalog()
        a = catalog.sample(10, RngStream(5))
        b = catalog.sample(10, RngStream(5))
        assert [s.domain for s in a] == [s.domain for s in b]

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            SiteCatalog().sample(10_000, RngStream(1))

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            SiteCatalog(())


class TestHostNames:
    def test_paper_style_names(self):
        site = SiteCatalog().get("ucsb.edu")
        assert host_name(0, site) == "ash.ucsb.edu"
        assert host_name(1, site) == "elm.ucsb.edu"

    def test_wraps_with_numbering(self):
        site = SiteCatalog().get("ucsb.edu")
        n = 25
        name = host_name(n, site)
        assert name.endswith(".ucsb.edu")
        assert name != host_name(n - 20, site)

    def test_site_of_host(self):
        assert site_of_host("ash.ucsb.edu") == "ucsb.edu"
        assert site_of_host("a.b.c.d.edu") == "d.edu"

    def test_site_of_host_invalid(self):
        with pytest.raises(ValueError):
            site_of_host("localhost")

"""Deliberate wire-format violations; every line number is asserted."""

import enum
import struct

from wire_defs import FIXED_SIZE

_CODE = struct.Struct("!B")


class ChunkKind(enum.IntEnum):
    DATA = 1
    ACK = 1  # expect: RPR001
    HUGE = 600  # expect: RPR001


class DataChunk:
    kind = ChunkKind.DATA


class AckChunk:  # expect: RPR001
    kind = ChunkKind.ACK


_REGISTRY = {  # expect: RPR001
    int(ChunkKind.DATA): DataChunk,
    int(ChunkKind.HUGE): DataChunk,
}


def native_pack(a: int, b: int) -> bytes:
    return struct.pack("HH", a, b)  # expect: RPR001


def bad_endian(buf: bytes) -> int:
    return int.from_bytes(buf[0:2], "little")  # expect: RPR001


def misaligned_peek(buf: bytes) -> int:
    return int.from_bytes(buf[3:5], "big") + FIXED_SIZE  # expect: RPR001


def broken_format(flag: bool) -> bytes:
    return struct.pack("!Z", flag)  # expect: RPR001

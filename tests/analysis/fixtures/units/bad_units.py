"""Unit-suffix conflicts for RPR006; line numbers asserted."""


def mix_sizes(total_bytes: int, size_mb: float) -> float:
    return total_bytes + size_mb  # expect: RPR006


def compare_times(elapsed_s: float, timeout_ms: float) -> bool:
    return elapsed_s > timeout_ms  # expect: RPR006


def accumulate(budget_ms: float, delta_s: float) -> float:
    budget_ms += delta_s  # expect: RPR006
    return budget_ms

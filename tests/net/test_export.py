"""Trace export/import tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.export import (
    load_traces,
    save_traces,
    trace_from_csv,
    trace_to_csv,
)
from repro.net.trace import SeqTrace


def ramp(name="UCSB-Denver", n=20):
    t = np.linspace(0, 10, n)
    return SeqTrace(times=t, acked=1e6 * t, name=name)


class TestCsvRoundtrip:
    def test_roundtrip_exact(self):
        tr = ramp()
        back = trace_from_csv(trace_to_csv(tr))
        assert back.name == tr.name
        assert np.allclose(back.times, tr.times)
        assert np.allclose(back.acked, tr.acked)

    def test_header_present(self):
        text = trace_to_csv(ramp())
        lines = text.splitlines()
        assert lines[0] == "# trace: UCSB-Denver"
        assert lines[1] == "time_s,acked_bytes"

    def test_empty_trace(self):
        tr = SeqTrace(times=np.array([]), acked=np.array([]), name="empty")
        back = trace_from_csv(trace_to_csv(tr))
        assert len(back.times) == 0 and back.name == "empty"

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            trace_from_csv("1.0,2.0\n")

    def test_malformed_row_rejected(self):
        text = "# trace: x\ntime_s,acked_bytes\n1.0\n"
        with pytest.raises(ValueError, match="two columns"):
            trace_from_csv(text)

    def test_non_numeric_rejected(self):
        text = "# trace: x\ntime_s,acked_bytes\none,two\n"
        with pytest.raises(ValueError, match="non-numeric"):
            trace_from_csv(text)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_roundtrip_property(self, values):
        acked = np.sort(np.array(values))
        times = np.arange(len(acked), dtype=float)
        tr = SeqTrace(times=times, acked=acked, name="prop")
        back = trace_from_csv(trace_to_csv(tr))
        assert np.allclose(back.acked, acked, rtol=1e-6)


class TestFileRoundtrip:
    def test_save_load_multiple(self, tmp_path):
        traces = [ramp("first"), ramp("second", n=5)]
        path = str(tmp_path / "traces.csv")
        save_traces(traces, path)
        back = load_traces(path)
        assert [t.name for t in back] == ["first", "second"]
        assert len(back[1].times) == 5

    def test_real_simulator_traces_roundtrip(self, tmp_path):
        from repro.net.simulator import NetworkSimulator
        from repro.net.topology import PathSpec
        from repro.util.units import mb

        sim = NetworkSimulator(seed=1)
        r = sim.run_relay(
            [
                PathSpec.from_mbit(40, 100, name="hop1"),
                PathSpec.from_mbit(40, 100, name="hop2"),
            ],
            mb(1),
        )
        path = str(tmp_path / "relay.csv")
        save_traces(r.traces, path)
        back = load_traces(path)
        assert [t.name for t in back] == ["hop1", "hop2"]
        assert back[0].final_acked == pytest.approx(
            r.traces[0].final_acked, rel=1e-6
        )

"""Failover-aware multicast staging over real sockets.

The :class:`MulticastFailoverSender` replicates one payload down a
depot tree, parents before children, so each branch streams from its
nearest complete ancestor's retained ledger.  These tests pin the three
load-bearing behaviours: ancestor replay (deep nodes cost the source
zero payload bytes), per-branch re-grafting when a depot dies
mid-staging (siblings undisturbed), and the claim-ticket path — a
tree-staged session is an ordinary parked session any node can serve
through the async pickup protocol.
"""

import socket
import threading
import time

import pytest

from repro.lsl.failover import NoRouteLeft
from repro.lsl.faults import RetryPolicy
from repro.lsl.multicast import StagingTree
from repro.lsl.multicast_failover import MulticastFailoverSender
from repro.obs.timeline import SessionTimeline
from repro.lsl.socket_transport import DepotServer, fetch_pickup
from repro.util.rng import RngStream

POLICY = RetryPolicy(
    max_retries=1,
    base_delay=0.01,
    multiplier=1.5,
    max_delay=0.05,
    jitter=0.0,
    io_timeout=5.0,
    connect_timeout=2.0,
)


def payload_bytes(size, seed=31):
    return RngStream(seed, "mc-failover/payload").generator.bytes(size)


def make_depots(names):
    return {name: DepotServer(name=name, retry=POLICY) for name in names}


def make_tree(servers, parents):
    """Build a StagingTree over live depot listeners.

    ``servers`` is an ordered list; ``parents[i]`` indexes it (-1 for
    the root).
    """
    return StagingTree(
        nodes=tuple(
            (parents[i], "127.0.0.1", servers[i].port)
            for i in range(len(servers))
        )
    )


def kill_all(servers):
    for server in servers:
        server.kill()


def dead_address():
    """A loopback address nothing listens on."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return ("127.0.0.1", port)


class TestHealthyStaging:
    def test_every_node_parks_a_byte_exact_copy(self):
        payload = payload_bytes(200_000)
        depots = make_depots(["root", "relay", "leaf", "side"])
        servers = list(depots.values())
        try:
            # root -> relay -> leaf, root -> side
            tree = make_tree(servers, [-1, 0, 1, 0])
            sender = MulticastFailoverSender(tree, retry=POLICY)
            staged = sender.stage(payload, chunk_size=16 << 10)
            held = {
                name: depot.held.get(staged.session)
                for name, depot in depots.items()
            }
        finally:
            kill_all(servers)
        assert staged.failovers == 0
        assert staged.avoided == set()
        assert all(copy == payload for copy in held.values()), held.keys()
        # healthy branches try exactly one ancestor chain each
        assert all(len(chains) == 1 for chains in staged.chains.values())

    def test_deep_node_replays_from_ancestor_ledger(self):
        """The tentpole economy: a deep delivery re-crosses zero payload
        bytes upstream — the nearest staged ancestor replays its ledger."""
        payload = payload_bytes(150_000)
        depots = make_depots(["root", "mid", "deep"])
        servers = list(depots.values())
        try:
            tree = make_tree(servers, [-1, 0, 1])
            sender = MulticastFailoverSender(tree, retry=POLICY)
            staged = sender.stage(payload, chunk_size=16 << 10)
            deep_copy = depots["deep"].held.get(staged.session)
        finally:
            kill_all(servers)
        assert deep_copy == payload
        reports = list(staged.delivered.values())
        # the root ingests the payload once; both descendants ride the
        # retained ledgers, costing the source nothing
        assert reports[0].high_water == len(payload)
        assert reports[1].high_water == 0
        assert reports[2].high_water == 0

    def test_striped_staging_is_byte_exact(self):
        payload = payload_bytes(300_000)
        depots = make_depots(["root", "left", "right"])
        servers = list(depots.values())
        try:
            tree = make_tree(servers, [-1, 0, 0])
            sender = MulticastFailoverSender(
                tree, retry=POLICY, stripes=3, stripe_block=8 << 10
            )
            staged = sender.stage(payload, chunk_size=16 << 10)
            held = [d.held.get(staged.session) for d in servers]
        finally:
            kill_all(servers)
        assert staged.stripes == 3
        assert all(copy == payload for copy in held)
        # one connection per stripe on every healthy hop
        assert all(
            r.attempts == 3 for r in staged.delivered.values()
        ), staged.delivered


class TestMidStagingKill:
    def test_orphan_regrafts_to_surviving_ancestor(self):
        """Kill the relay once it holds the session; its child must
        replay from the root while the root's other branch is untouched."""
        payload = payload_bytes(4 << 20)
        depots = make_depots(["root", "relay", "side", "orphan"])
        servers = list(depots.values())
        # ascending delivery order: root, relay, side, orphan
        tree = make_tree(servers, [-1, 0, 0, 1])
        timeline = SessionTimeline()
        sender = MulticastFailoverSender(
            tree, retry=POLICY, max_failovers=2, timeline=timeline
        )

        def killer():
            # trigger on the *side* branch parking its copy: delivery is
            # sequential, so by then the relay's branch is fully acked
            # (killing between the relay's park and its final ack would
            # fail the relay's own branch instead of orphaning its child)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if depots["side"].held:
                    depots["relay"].kill()
                    return
                time.sleep(0.0005)

        thread = threading.Thread(target=killer, name="relay-killer")
        thread.start()
        try:
            staged = sender.stage(payload, chunk_size=16 << 10)
        finally:
            thread.join()
            kill_all(servers)
        assert staged.failovers == 1
        orphan_addr = tree.address_of(3)
        chains = staged.chains[orphan_addr]
        assert len(chains) == 2
        # first try went through the relay, the re-graft skips it
        assert len(chains[0]) == 2
        assert chains[1] == [tree.address_of(0)]
        assert depots["orphan"].held.get(staged.session) == payload
        assert depots["side"].held.get(staged.session) == payload
        events = [
            e for e in timeline.events() if e.event == "failover"
        ]
        assert len(events) == 1
        assert "branch=" in events[0].detail
        assert "avoid=" in events[0].detail

    def test_dead_branch_exhausts_regraft_budget(self):
        depots = make_depots(["root"])
        servers = list(depots.values())
        try:
            tree = StagingTree(
                nodes=(
                    (-1, "127.0.0.1", servers[0].port),
                    (0, *dead_address()),
                )
            )
            sender = MulticastFailoverSender(
                tree,
                retry=RetryPolicy(
                    max_retries=0,
                    base_delay=0.01,
                    jitter=0.0,
                    io_timeout=2.0,
                    connect_timeout=0.5,
                ),
                max_failovers=1,
            )
            with pytest.raises(NoRouteLeft):
                sender.stage(payload_bytes(10_000))
        finally:
            kill_all(servers)


class TestClaimTicketPickup:
    def test_tree_staged_session_serves_async_pickup(self):
        """Satellite: a session deposited through a staging tree is an
        ordinary parked session — any node serves it via the pickup
        protocol, and the claim pops that node's copy only."""
        payload = payload_bytes(120_000)
        depots = make_depots(["root", "leaf-a", "leaf-b"])
        servers = list(depots.values())
        try:
            tree = make_tree(servers, [-1, 0, 0])
            sender = MulticastFailoverSender(tree, retry=POLICY)
            staged = sender.stage(payload, chunk_size=16 << 10)
            session_id = bytes.fromhex(staged.session)
            got = fetch_pickup(
                ("127.0.0.1", depots["leaf-a"].port), session_id
            )
            # the claim is per node: leaf-a's ticket is spent, but the
            # other copies are still parked
            leftover = depots["leaf-a"].held.get(staged.session)
            sibling = depots["leaf-b"].held.get(staged.session)
        finally:
            kill_all(servers)
        assert got == payload
        assert leftover is None
        assert sibling == payload

    def test_pickup_of_unknown_session_yields_no_bytes(self):
        # the depot refuses server-side (and logs it); the client sees a
        # clean zero-byte stream, never a partial or foreign payload
        depots = make_depots(["root"])
        servers = list(depots.values())
        try:
            got = fetch_pickup(("127.0.0.1", depots["root"].port), bytes(16))
        finally:
            kill_all(servers)
        assert got == b""

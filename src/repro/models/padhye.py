"""The PFTK (Padhye-Firoiu-Towsley-Kurose) TCP throughput model.

Extends the Mathis law with retransmission timeouts and a receiver-window
ceiling; at small loss rates it converges to Mathis, at large loss rates
it is markedly lower because timeouts dominate.  Included because the
PlanetLab environment the paper measures (small buffers, heavy sharing)
sits in exactly the regime where the two models diverge.
"""

from __future__ import annotations

import math

from repro.models.mathis import mathis_rate
from repro.util.validation import check_non_negative, check_positive, check_probability


def padhye_rate(
    mss: int,
    rtt: float,
    loss_rate: float,
    rto: float = 0.2,
    wmax: float | None = None,
    b: int = 1,
) -> float:
    """PFTK steady-state throughput in bytes/sec.

    Implements the full approximation (eq. 30 of the PFTK paper)::

                              MSS
        B = min( Wmax/RTT, ------------------------------------------------ )
                 RTT*sqrt(2bp/3) + T0 * min(1, 3*sqrt(3bp/8)) * p * (1+32p^2)

    Parameters
    ----------
    mss:
        Segment size in bytes.
    rtt:
        Round-trip time in seconds.
    loss_rate:
        Per-packet loss probability; ``0`` defers to the window ceiling
        (``inf`` when ``wmax`` is ``None``).
    rto:
        Retransmission timeout ``T0`` in seconds.
    wmax:
        Receiver-window ceiling in bytes (``None`` = unlimited).
    b:
        Packets acknowledged per ACK (2 with delayed ACKs).
    """
    check_positive("mss", mss)
    check_positive("rtt", rtt)
    check_probability("loss_rate", loss_rate)
    check_positive("rto", rto)
    check_positive("b", b)
    if wmax is not None:
        check_positive("wmax", wmax)

    window_ceiling = math.inf if wmax is None else wmax / rtt
    if loss_rate == 0.0:
        return window_ceiling

    p = loss_rate
    denominator = rtt * math.sqrt(2.0 * b * p / 3.0) + rto * min(
        1.0, 3.0 * math.sqrt(3.0 * b * p / 8.0)
    ) * p * (1.0 + 32.0 * p * p)
    loss_limited = mss / denominator
    return min(window_ceiling, loss_limited)


def padhye_vs_mathis_ratio(mss: int, rtt: float, loss_rate: float) -> float:
    """Ratio ``padhye / mathis`` — below 1, increasingly so as ``p`` grows.

    Useful for sanity checks and the documentation examples.
    """
    check_probability("loss_rate", loss_rate)
    if loss_rate == 0.0:
        return 1.0
    return padhye_rate(mss, rtt, loss_rate) / mathis_rate(mss, rtt, loss_rate)

"""Observability layer: metrics, session timelines and exporters.

The measurement substrate the paper's evaluation implies: labelled
metric series (:mod:`repro.obs.registry`), per-session event timelines
shared by the socket transport and the simulator
(:mod:`repro.obs.timeline`), Prometheus/JSON exporters
(:mod:`repro.obs.export`) and a bridge into the existing sequence-trace
plotting machinery (:mod:`repro.obs.bridge`).  Documented in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.bridge import plot_timeline, timeline_to_seqtrace
from repro.obs.export import (
    SCHEMA_VERSION,
    export_document,
    load_export,
    render_prometheus,
    transfer_result_metrics,
    validate_export,
    write_export,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from repro.obs.timeline import (
    DISABLED_TIMELINE,
    EVENTS,
    STREAM_DOWN,
    STREAM_UP,
    ProgressWatermarks,
    SessionTimeline,
    TimelineEvent,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DISABLED_TIMELINE",
    "EVENTS",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "ProgressWatermarks",
    "Registry",
    "SCHEMA_VERSION",
    "STREAM_DOWN",
    "STREAM_UP",
    "SessionTimeline",
    "TimelineEvent",
    "export_document",
    "load_export",
    "plot_timeline",
    "render_prometheus",
    "timeline_to_seqtrace",
    "transfer_result_metrics",
    "validate_export",
    "write_export",
]

"""Timeline narration that violates the LSL session state machine."""

from repro.obs.timeline import STREAM_DOWN, STREAM_UP


def narrate_bad_down(timeline):
    timeline.record("connect", stream=STREAM_DOWN)
    timeline.record("complete", stream=STREAM_DOWN)  # expect: RPR014
    timeline.record("header_tx", stream=STREAM_DOWN)


def narrate_bad_up(timeline):
    timeline.record("header_rx", stream=STREAM_UP)
    timeline.record("eof", stream=STREAM_UP)
    timeline.record("progress", stream=STREAM_UP)  # expect: RPR014


def narrate_failover_on_up(timeline):
    timeline.record("header_rx", stream="up")
    timeline.record("failover", stream="up")  # expect: RPR014

"""Argument-validation helpers.

The simulator layers take many scalar parameters (bandwidths, latencies,
buffer sizes, probabilities).  Misconfigured values fail *here*, at
construction time, with a clear message — not three layers down as a NaN.
"""

from __future__ import annotations

import math
from typing import Any


class ValidationError(ValueError):
    """Raised when a configuration parameter is out of its valid domain."""


def _fail(name: str, value: Any, requirement: str) -> None:
    raise ValidationError(f"{name}={value!r} invalid: must be {requirement}")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and finite; return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, "a positive number")
    if not math.isfinite(value) or value <= 0:
        _fail(name, value, "a finite positive number")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` and finite; return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, "a non-negative number")
    if not math.isfinite(value) or value < 0:
        _fail(name, value, "a finite non-negative number")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Require an integer ``value >= 1``; return it.

    Stricter than :func:`check_positive` for parameters that feed byte
    counts into ``recv()``/``range()``: a fractional value like ``0.5``
    passes the positivity check but truncates to a zero-byte read,
    silently discarding data.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(name, value, "a positive integer")
    if value < 1:
        _fail(name, value, "a positive integer")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, "a probability in [0, 1]")
    if not (0.0 <= value <= 1.0):
        _fail(name, value, "a probability in [0, 1]")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Require ``low <= value <= high``; return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(name, value, f"a number in [{low}, {high}]")
    if not (low <= value <= high):
        _fail(name, value, f"in [{low}, {high}]")
    return value

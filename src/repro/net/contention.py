"""Link contention: multiple TCP flows sharing bottleneck capacity.

Section 2 argues that LSL is safe for incremental deployment because
"the system relies on TCP connections between depots" — its impact on
competing traffic is that of ordinary TCP flows.  Testing that claim
needs several flows sharing a link, which the private-path model cannot
express; this module adds it.

:class:`SharedLink` is a capacity pool; a :class:`ContendedScenario`
steps any mix of transfers (direct and relayed) together, asking every
flow for its *desired* send, water-filling each shared link's capacity
across the flows that cross it (max-min fairness at the fluid level —
what per-packet FIFO sharing gives long-run), and committing the grants.

The well-known RTT bias of TCP lives in the *window dynamics*, which the
flows keep: a short-RTT flow's window recovers faster after loss, so
under loss-based contention it claims more than an even share.  The
fairness benchmark quantifies exactly that for relayed sublinks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.net.depot_sim import RelayPipeline
from repro.net.flow import FluidTcpFlow
from repro.net.tcp import TcpConfig
from repro.net.topology import PathSpec
from repro.util.validation import check_positive


class SharedLink:
    """One contended link with a fixed capacity (bytes/sec)."""

    def __init__(self, capacity: float, name: str = "") -> None:
        check_positive("capacity", capacity)
        self.capacity = float(capacity)
        self.name = name
        self.total_carried = 0.0

    def allocate(self, desires: list[float], dt: float) -> list[float]:
        """Max-min fair (water-filling) split of ``capacity * dt``.

        Flows wanting less than an equal share keep their desire; the
        leftover is re-divided among the still-hungry until exhausted.
        """
        budget = self.capacity * dt
        n = len(desires)
        grants = [0.0] * n
        active = [i for i in range(n) if desires[i] > 0]
        remaining = {i: desires[i] for i in active}
        while active and budget > 1e-12:
            share = budget / len(active)
            satisfied = [i for i in active if remaining[i] <= share]
            if satisfied:
                for i in satisfied:
                    grants[i] += remaining[i]
                    budget -= remaining[i]
                    del remaining[i]
                active = [i for i in active if i in remaining]
            else:
                for i in active:
                    grants[i] += share
                    remaining[i] -= share
                budget = 0.0
        self.total_carried += sum(grants)
        return grants


@dataclass
class TransferOutcome:
    """Result of one transfer inside a contended scenario.

    Attributes
    ----------
    label:
        The transfer's name.
    size:
        Bytes moved.
    duration:
        Completion time (``nan`` if the scenario stopped first).
    """

    label: str
    size: int
    duration: float

    @property
    def bandwidth(self) -> float:
        return self.size / self.duration


@dataclass
class _Member:
    label: str
    pipeline: RelayPipeline
    #: per sublink: the SharedLink it crosses, or None for private wire
    links: list[SharedLink | None]
    finished_at: float = math.nan


class ContendedScenario:
    """Steps several (possibly relayed) transfers over shared links.

    Parameters
    ----------
    dt:
        Step size in seconds.
    config:
        Default TCP parameters for every connection.
    """

    def __init__(self, dt: float = 0.002, config: TcpConfig | None = None):
        check_positive("dt", dt)
        self.dt = dt
        self.config = config or TcpConfig()
        self._members: list[_Member] = []

    def add_transfer(
        self,
        label: str,
        paths: list[PathSpec],
        size: int,
        shared: list[SharedLink | None] | None = None,
        depot_capacities: list[int] | None = None,
    ) -> None:
        """Register a transfer.

        ``shared[i]`` names the shared link sublink ``i`` crosses
        (``None`` = private).  Omitting ``shared`` makes every sublink
        private.
        """
        pipeline = RelayPipeline(
            paths,
            size,
            config=self.config,
            depot_capacities=depot_capacities,
            record_trace=False,
        )
        links = shared if shared is not None else [None] * len(paths)
        if len(links) != len(paths):
            raise ValueError(
                f"{len(paths)} sublinks need {len(paths)} shared-link slots"
            )
        self._members.append(_Member(label, pipeline, list(links)))

    def run(self, max_time: float = 600.0) -> list[TransferOutcome]:
        """Step until every transfer completes; return outcomes in
        registration order.

        Raises
        ------
        RuntimeError
            If any transfer fails to finish within ``max_time``.
        """
        if not self._members:
            raise ValueError("no transfers registered")
        now = 0.0
        pending = set(range(len(self._members)))
        while pending:
            now += self.dt
            if now > max_time:
                stuck = [self._members[i].label for i in sorted(pending)]
                raise RuntimeError(f"transfers never finished: {stuck}")
            # phase 1: clock events, collect desires
            desires: dict[SharedLink, list[tuple[FluidTcpFlow, float]]] = {}
            private: list[tuple[FluidTcpFlow, float]] = []
            for idx in sorted(pending):
                member = self._members[idx]
                for flow, link in zip(member.pipeline.flows, member.links):
                    flow.process_events(now)
                    desire = flow.desired_send(now, self.dt)
                    if link is None:
                        private.append((flow, desire))
                    else:
                        desires.setdefault(link, []).append((flow, desire))
            # phase 2: grants
            for flow, desire in private:
                flow.commit_send(now, desire)
            for link, entries in desires.items():
                grants = link.allocate([d for _, d in entries], self.dt)
                for (flow, _), grant in zip(entries, grants):
                    flow.commit_send(now, grant)
            # phase 3: completions
            for idx in list(pending):
                member = self._members[idx]
                if member.pipeline.complete:
                    member.finished_at = now
                    pending.discard(idx)
        return [
            TransferOutcome(m.label, m.pipeline.size, m.finished_at)
            for m in self._members
        ]


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: 1 = perfectly even, 1/n = one flow hogs.

    ``(sum x)^2 / (n * sum x^2)`` over per-flow throughputs.
    """
    if not values:
        raise ValueError("need at least one value")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)

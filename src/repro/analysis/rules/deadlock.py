"""RPR013 — static lock-order deadlock detection.

Built on the whole-program lock graph
(:func:`repro.analysis.program.program_graph`): for every class that
creates ``threading.Lock``/``RLock`` attributes, each acquisition of a
lock while another is held — directly nested ``with`` blocks or any
chain of ``self.<m>()`` calls — contributes a directed edge.  A cycle
in that graph means two code paths acquire the same locks in opposite
orders: two threads taking the two paths concurrently can deadlock.
A one-edge cycle is a method re-acquiring a non-reentrant lock it
already holds — self-deadlock, no second thread required.

The finding is pinned to the acquisition site of the cycle's first
edge and names every edge (method and line) so the order to fix is
visible without re-deriving the graph.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.program import ClassLocks, program_graph
from repro.analysis.registry import Rule, register
from repro.analysis.walker import Project


def _describe(owner: ClassLocks, cycle: list[tuple[str, str]]) -> str:
    parts = []
    for src, dst in cycle:
        edge = owner.edges[(src, dst)]
        via = f" via self.{edge.via}()" if edge.via else ""
        parts.append(
            f"{src} -> {dst} in {edge.method}() line {edge.line}{via}"
        )
    return "; ".join(parts)


@register
class LockOrderInversionRule(Rule):
    """RPR013: opposite lock acquisition orders across reachable paths."""

    id = "RPR013"
    name = "lock-order-inversion"
    rationale = (
        "two code paths that acquire the same locks in opposite orders "
        "deadlock the moment two threads interleave them"
    )

    def project_check(self, project: Project) -> Iterator[Finding]:
        graph = program_graph(project)
        for owner in graph.class_locks:
            for cycle in owner.cycles():
                first = owner.edges[cycle[0]]
                if len(cycle) == 1 and cycle[0][0] == cycle[0][1]:
                    message = (
                        f"{cycle[0][0]} is re-acquired while already "
                        f"held in {first.method}() — a non-reentrant "
                        "Lock self-deadlocks here"
                    )
                else:
                    message = (
                        "lock-order inversion (potential deadlock): "
                        + _describe(owner, cycle)
                    )
                yield Finding(
                    path=owner.module_path,
                    line=first.line,
                    col=first.col,
                    rule=self.id,
                    message=message,
                    symbol=cycle[0][0],
                )

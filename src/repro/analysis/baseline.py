"""Ratchet baseline: tolerate grandfathered findings, block new ones.

The baseline file records, per ``(path, rule)``, how many findings were
accepted when the baseline was last written.  A later run may have *at
most* that many findings for the pair — fewer is progress (and a prompt
to re-record so the ratchet tightens), more is a failure.  This lets the
checker land on a dirty tree and squeeze the debt out PR by PR instead
of blocking the first build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.findings import Finding

#: Default baseline location, relative to the current directory.
DEFAULT_BASELINE = ".rpr-baseline.json"

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """In-memory form of the baseline file.

    ``entries`` maps ``"<path>::<rule>"`` to the accepted finding count.
    """

    entries: dict[str, int] = field(default_factory=dict)

    @staticmethod
    def key(path: str, rule: str) -> str:
        return f"{path}::{rule}"

    def allowance(self, path: str, rule: str) -> int:
        """Accepted finding count for one ``(path, rule)`` pair."""
        return self.entries.get(self.key(path, rule), 0)

    @classmethod
    def from_findings(cls, findings: Iterable["Finding"]) -> "Baseline":
        """A baseline accepting exactly the given findings."""
        entries: dict[str, int] = {}
        for finding in findings:
            key = cls.key(finding.path, finding.rule)
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    # -- file io -----------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file.

        Raises
        ------
        ValueError
            On a malformed or wrong-version file (a silently ignored
            baseline would un-ratchet the build).
        """
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"baseline {path}: expected version {_FORMAT_VERSION} object"
            )
        entries = raw.get("entries", {})
        if not isinstance(entries, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v >= 0
            for k, v in entries.items()
        ):
            raise ValueError(f"baseline {path}: malformed entries")
        return cls(entries=dict(entries))

    def save(self, path: str | Path) -> None:
        """Write the baseline file (sorted keys, trailing newline)."""
        payload = {
            "version": _FORMAT_VERSION,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

"""Smoke tests: the shipped examples must run to completion.

Each example is executed as a subprocess (the way a user runs it) and
its narrative output is checked for the landmark lines.  The PlanetLab
campaign example is exercised with reduced scope through its module
import path to keep the suite fast.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "speedup" in out
        assert "uses LSL depots: True" in out

    def test_mmp_tree_walkthrough(self):
        out = run_example("mmp_tree_walkthrough.py")
        assert "Figure 7" in out and "Figure 8" in out
        assert "scheduler coverage" in out

    def test_lsl_over_sockets(self):
        out = run_example("lsl_over_sockets.py")
        assert "integrity ok: True" in out

    def test_async_pickup(self):
        out = run_example("async_pickup.py")
        assert "integrity ok: True" in out
        assert "0 session(s) after pickup" in out

    def test_grid_data_staging(self):
        out = run_example("grid_data_staging.py", timeout=300.0)
        assert "byte-exact: True" in out
        assert "scheduled route" in out

    @pytest.mark.slow
    def test_planetlab_campaign(self):
        out = run_example("planetlab_campaign.py", timeout=600.0)
        assert "overall mean speedup" in out

"""Inline and file-level ``# rpr: disable`` suppression handling."""

import textwrap

from repro.analysis import PARSE_ERROR, run_paths


def test_inline_and_filewide_suppressions(run_fixture):
    result = run_fixture("suppress")
    assert result.clean
    # two inline (one targeted, one blanket) + one file-wide
    assert result.suppressed == 3


def test_targeted_suppression_only_mutes_named_rule(tmp_path):
    src = textwrap.dedent(
        """\
        import socket


        def dial(host, port):
            try:
                return socket.create_connection((host, port))  # rpr: disable=RPR008
            except:
                return None
        """
    )
    (tmp_path / "mod.py").write_text(src)
    result = run_paths([tmp_path])
    # the RPR008 tag sits on the connect line, not the except line:
    # both findings must survive
    assert result.suppressed == 0
    assert sorted(f.rule for f in result.findings) == ["RPR008", "RPR010"]


def test_parse_errors_cannot_be_suppressed(tmp_path):
    (tmp_path / "broken.py").write_text(
        "# rpr: disable-file\ndef oops(:\n"
    )
    result = run_paths([tmp_path])
    (finding,) = result.findings
    assert finding.rule == PARSE_ERROR
    assert result.suppressed == 0
    assert not result.clean

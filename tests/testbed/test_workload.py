"""Workload generator tests."""

import pytest

from repro.testbed.workload import TransferRequest, WorkloadConfig, WorkloadGenerator
from repro.util.units import mb


HOSTS = [f"h{i}.site{i % 3}.edu" for i in range(12)]


class TestConfig:
    def test_paper_sizes(self):
        cfg = WorkloadConfig()
        assert cfg.sizes == [mb(2**n) for n in range(7)]

    def test_invalid_exponents(self):
        with pytest.raises(ValueError):
            WorkloadConfig(min_exponent=3, max_exponent=3)
        with pytest.raises(ValueError):
            WorkloadConfig(min_exponent=-1)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            WorkloadConfig(lsl_probability=1.5)


class TestGenerator:
    def test_needs_two_hosts(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(["only-one"])

    def test_request_fields_valid(self):
        gen = WorkloadGenerator(HOSTS, seed=1)
        sizes = set(WorkloadConfig().sizes)
        for req in gen.batch(200):
            assert req.src in HOSTS and req.dst in HOSTS
            assert req.src != req.dst
            assert req.size in sizes
            assert isinstance(req.use_lsl, bool)

    def test_reproducible(self):
        a = WorkloadGenerator(HOSTS, seed=9).batch(50)
        b = WorkloadGenerator(HOSTS, seed=9).batch(50)
        assert a == b

    def test_sizes_are_powers_of_two_megabytes(self):
        gen = WorkloadGenerator(HOSTS, seed=2)
        for req in gen.batch(100):
            n = req.size >> 20
            assert n & (n - 1) == 0  # power of two

    def test_mode_probability_respected(self):
        gen = WorkloadGenerator(
            HOSTS, WorkloadConfig(lsl_probability=1.0), seed=3
        )
        assert all(r.use_lsl for r in gen.batch(50))
        gen = WorkloadGenerator(
            HOSTS, WorkloadConfig(lsl_probability=0.0), seed=3
        )
        assert not any(r.use_lsl for r in gen.batch(50))

    def test_all_sizes_appear_eventually(self):
        gen = WorkloadGenerator(HOSTS, seed=4)
        seen = {r.size for r in gen.batch(500)}
        assert seen == set(WorkloadConfig().sizes)

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(HOSTS).batch(0)


class TestPairedCases:
    def test_balanced_design(self):
        gen = WorkloadGenerator(HOSTS, seed=5)
        pairs = [(HOSTS[0], HOSTS[1]), (HOSTS[2], HOSTS[3])]
        reqs = gen.paired_cases(pairs, iterations=2)
        # 2 pairs x 7 sizes x 2 iterations x 2 modes
        assert len(reqs) == 2 * 7 * 2 * 2
        direct = [r for r in reqs if not r.use_lsl]
        lsl = [r for r in reqs if r.use_lsl]
        assert len(direct) == len(lsl)

    def test_every_size_covered_per_pair(self):
        gen = WorkloadGenerator(HOSTS, seed=6)
        reqs = gen.paired_cases([(HOSTS[0], HOSTS[1])], iterations=1)
        sizes = {r.size for r in reqs}
        assert sizes == set(WorkloadConfig().sizes)

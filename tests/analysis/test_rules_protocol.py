"""RPR014 protocol conformance and RPR017 cross-stack parity."""

import shutil
from pathlib import Path

from repro.analysis import run_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: the legacy fire-and-forget connect/header_tx narration in
#: ``relay_transfer`` — swapped by the seeded-mutation test
ORDERED_RECORDS = '''\
            tl.record(
                "connect", node=source_name, stream=STREAM_DOWN,
                session=header.hex_id,
            )
            tl.record(
                "header_tx", node=source_name, stream=STREAM_DOWN,
                session=header.hex_id,
            )
'''

SWAPPED_RECORDS = '''\
            tl.record(
                "header_tx", node=source_name, stream=STREAM_DOWN,
                session=header.hex_id,
            )
            tl.record(
                "connect", node=source_name, stream=STREAM_DOWN,
                session=header.hex_id,
            )
'''


def test_violations_match_annotations(expect_findings):
    result = expect_findings("protocol", select=["RPR014"])
    by_line = {f.line: f for f in result.findings}
    complete = by_line[8]
    assert complete.symbol == "complete"
    assert "after 'connect'" in complete.message
    # the message names the legal successors so the fix is obvious
    assert "legal successors" in complete.message
    assert "header_tx" in complete.message


def test_failover_is_downstream_only(run_fixture):
    result = run_fixture("protocol", select=["RPR014"])
    (failover,) = [f for f in result.findings if f.symbol == "failover"]
    assert "on the up stream" in failover.message


def test_conformant_narration_is_clean(run_fixture):
    result = run_fixture("protocol", select=["RPR014"])
    assert not any("good_protocol" in f.path for f in result.findings)


def test_seeded_order_swap_in_real_transport(tmp_path):
    """Swapping connect/header_tx in the live ``relay_transfer`` is
    caught at the (now out-of-order) connect record."""
    src = (
        Path(__file__).parents[2] / "src/repro/lsl/socket_transport.py"
    )
    copy = tmp_path / "socket_transport.py"
    shutil.copy(src, copy)

    clean = run_paths([copy], select=["RPR014"])
    assert clean.findings == []

    text = copy.read_text()
    assert ORDERED_RECORDS in text
    copy.write_text(text.replace(ORDERED_RECORDS, SWAPPED_RECORDS, 1))

    result = run_paths([copy], select=["RPR014"])
    (finding,) = result.findings
    assert finding.rule == "RPR014"
    assert finding.symbol == "connect"
    assert "after 'header_tx'" in finding.message


def test_parity_findings_match_annotations(expect_findings):
    result = expect_findings("parity", select=["RPR017"])
    by_symbol = {f.symbol: f for f in result.findings}
    assert "never by the simulator (net/)" in by_symbol["failover"].message
    assert "lsl" in by_symbol["failover"].path
    assert "never by the socket transport (lsl/)" in by_symbol[
        "error"
    ].message
    assert "net" in by_symbol["error"].path


def test_parity_silent_when_one_stack_absent(fixture_root):
    """A run that only sees one stack has nothing to compare."""
    result = run_paths([fixture_root / "parity" / "lsl"], select=["RPR017"])
    assert result.findings == []

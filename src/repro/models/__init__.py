"""Closed-form TCP performance models.

The fluid simulator (:mod:`repro.net`) is faithful but costs thousands of
steps per transfer; the PlanetLab-scale campaigns of Section 4.2 need
hundreds of thousands of transfer-time estimates.  This package provides
the standard analytic models:

* :mod:`~repro.models.mathis` — the macroscopic steady-state law
  ``rate = C * MSS / (RTT * sqrt(p))`` (Mathis et al., the paper's [22]);
* :mod:`~repro.models.padhye` — the PFTK model including timeouts;
* :mod:`~repro.models.transfer_time` — handshake + slow-start ramp +
  steady-state completion time for a single connection (Cardwell-style);
* :mod:`~repro.models.relay` — pipelined completion time for TCP
  connections in series through depots, dominated by the slowest sublink.

The models are deliberately consistent with the fluid simulator: tests
cross-validate them within tolerance.
"""

from repro.models.mathis import mathis_rate, mathis_window
from repro.models.padhye import padhye_rate
from repro.models.transfer_time import (
    TransferModel,
    steady_state_rate,
    transfer_model,
    transfer_time,
    effective_bandwidth,
)
from repro.models.relay import (
    relay_transfer_time,
    relay_effective_bandwidth,
    pipeline_fill_time,
)

__all__ = [
    "mathis_rate",
    "mathis_window",
    "padhye_rate",
    "TransferModel",
    "steady_state_rate",
    "transfer_model",
    "transfer_time",
    "effective_bandwidth",
    "relay_transfer_time",
    "relay_effective_bandwidth",
    "pipeline_fill_time",
]

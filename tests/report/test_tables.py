"""Text table tests."""

import pytest

from repro.report.tables import TextTable, format_table


class TestTextTable:
    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_row_width_checked(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_alignment(self):
        t = TextTable(["size", "speedup"])
        t.add_row(["1MB", 1.064])
        t.add_row(["128MB", 1.3])
        out = t.render().splitlines()
        assert out[0].startswith("size")
        assert "|" in out[0]
        # all lines the same width family: header sep has + at column joins
        assert "+" in out[1]
        assert out[2].split("|")[0].strip() == "1MB"
        assert out[3].split("|")[0].strip() == "128MB"

    def test_floats_formatted_two_places(self):
        t = TextTable(["x"])
        t.add_row([1.23456])
        assert "1.23" in t.render()

    def test_len(self):
        t = TextTable(["x"])
        assert len(t) == 0
        t.add_row([1])
        assert len(t) == 1

    def test_wide_cells_expand_columns(self):
        t = TextTable(["h"])
        t.add_row(["a-very-long-cell-value"])
        lines = t.render().splitlines()
        assert len(lines[1]) >= len("a-very-long-cell-value")


class TestFormatTable:
    def test_one_shot(self):
        out = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in out and "4" in out
        assert len(out.splitlines()) == 4

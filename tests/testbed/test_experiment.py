"""Campaign runner tests (scaled-down PlanetLab and Abilene)."""

import pytest

from repro.testbed.abilene import abilene_testbed
from repro.testbed.experiment import (
    CampaignConfig,
    run_campaign,
    run_random_campaign,
)
from repro.testbed.planetlab import PlanetLabConfig, generate_planetlab
from repro.testbed.stats import group_cases, overall_speedup
from repro.testbed.workload import WorkloadConfig


SMALL_WORKLOAD = WorkloadConfig(min_exponent=0, max_exponent=3)


@pytest.fixture(scope="module")
def small_testbed():
    return generate_planetlab(PlanetLabConfig(n_sites=15), seed=5)


@pytest.fixture(scope="module")
def small_campaign(small_testbed):
    return run_campaign(
        small_testbed,
        CampaignConfig(
            iterations=2, max_cases=20, workload=SMALL_WORKLOAD
        ),
        seed=2,
    )


class TestCampaignBasics:
    def test_produces_measurements(self, small_campaign):
        assert len(small_campaign) > 0

    def test_balanced_direct_and_lsl(self, small_campaign):
        direct = [m for m in small_campaign.measurements if not m.use_lsl]
        lsl = [m for m in small_campaign.measurements if m.use_lsl]
        # every scheduled measurement has a direct twin; some decisions
        # may fall back to direct, so direct >= lsl
        assert len(direct) >= len(lsl) > 0

    def test_coverage_in_unit_range(self, small_campaign):
        assert 0.0 < small_campaign.coverage <= 1.0

    def test_max_cases_respected(self, small_campaign):
        assert len(small_campaign.lsl_pairs) <= 20

    def test_only_scheduled_pairs_measured(self, small_campaign):
        measured_pairs = {
            (m.src, m.dst) for m in small_campaign.measurements
        }
        assert measured_pairs == set(small_campaign.lsl_pairs)

    def test_decisions_recorded(self, small_campaign):
        for pair in small_campaign.lsl_pairs:
            assert pair in small_campaign.decisions

    def test_lsl_routes_have_depots(self, small_campaign):
        lsl = [m for m in small_campaign.measurements if m.use_lsl]
        assert all(len(m.route) > 2 for m in lsl)

    def test_bandwidths_positive(self, small_campaign):
        assert all(m.bandwidth > 0 for m in small_campaign.measurements)

    def test_deterministic(self, small_testbed):
        cfg = CampaignConfig(iterations=1, max_cases=5, workload=SMALL_WORKLOAD)
        a = run_campaign(small_testbed, cfg, seed=3)
        b = run_campaign(small_testbed, cfg, seed=3)
        assert a.measurements == b.measurements


class TestPaperShape:
    def test_planetlab_mean_speedup_modest_but_positive(self, small_campaign):
        """Figure 9's qualitative claim: LSL helps on average, by a
        modest factor."""
        cases = group_cases(small_campaign.measurements)
        mean = overall_speedup(cases)
        assert 0.95 < mean < 1.6

    def test_abilene_depots_used(self):
        tb = abilene_testbed(seed=1)
        result = run_campaign(
            tb,
            CampaignConfig(
                iterations=1,
                max_cases=20,
                workload=WorkloadConfig(min_exponent=4, max_exponent=5),
                depot_load_median=0.9,
                depot_load_sigma=0.2,
            ),
            seed=4,
        )
        depots_used = {
            hop
            for d in result.decisions.values()
            for hop in d.route[1:-1]
        }
        # only POP depots may forward in this testbed
        assert depots_used
        assert all(h.startswith("depot.") for h in depots_used)


class TestRandomCampaign:
    def test_only_lsl_pairs_measured(self, small_testbed):
        result = run_random_campaign(
            small_testbed,
            n_requests=400,
            config=CampaignConfig(workload=SMALL_WORKLOAD),
            seed=5,
        )
        assert len(result) > 0
        for pair in {(m.src, m.dst) for m in result.measurements}:
            assert result.decisions[pair].use_lsl

    def test_unbalanced_sampling(self, small_testbed):
        """The random protocol produces unequal per-case counts."""
        result = run_random_campaign(
            small_testbed,
            n_requests=600,
            config=CampaignConfig(workload=SMALL_WORKLOAD),
            seed=6,
        )
        counts = {}
        for m in result.measurements:
            counts[(m.src, m.dst, m.size, m.use_lsl)] = (
                counts.get((m.src, m.dst, m.size, m.use_lsl), 0) + 1
            )
        assert len(set(counts.values())) > 1

    def test_same_story_as_balanced_design(self, small_testbed):
        """The protocol change must not flip the aggregate conclusion."""
        balanced = run_campaign(
            small_testbed,
            CampaignConfig(iterations=2, max_cases=20, workload=SMALL_WORKLOAD),
            seed=7,
        )
        random_style = run_random_campaign(
            small_testbed,
            n_requests=2500,
            config=CampaignConfig(workload=SMALL_WORKLOAD),
            seed=7,
        )
        b = overall_speedup(group_cases(balanced.measurements))
        r = overall_speedup(group_cases(random_style.measurements))
        # both land in the same modest-gain regime
        assert abs(b - r) < 0.35

    def test_deterministic(self, small_testbed):
        cfg = CampaignConfig(workload=SMALL_WORKLOAD)
        a = run_random_campaign(small_testbed, 200, cfg, seed=9)
        b = run_random_campaign(small_testbed, 200, cfg, seed=9)
        assert a.measurements == b.measurements


class TestSensorProbeMode:
    def test_sensor_mode_produces_comparable_campaign(self, small_testbed):
        cfg = CampaignConfig(
            iterations=1,
            max_cases=10,
            workload=SMALL_WORKLOAD,
            probe_mode="sensors",
            sensor_rounds=3,
        )
        result = run_campaign(small_testbed, cfg, seed=8)
        assert len(result) > 0
        assert 0.0 < result.coverage <= 1.0

    def test_invalid_probe_mode_rejected(self):
        with pytest.raises(ValueError, match="probe_mode"):
            CampaignConfig(probe_mode="psychic")

    def test_sensor_and_batch_agree_on_coverage_scale(self, small_testbed):
        """Both probing styles should produce the same order of depot
        coverage — the token schedule changes timing, not physics."""
        base = dict(iterations=1, max_cases=5, workload=SMALL_WORKLOAD)
        batch = run_campaign(
            small_testbed, CampaignConfig(probe_mode="batch", **base), seed=9
        )
        sensed = run_campaign(
            small_testbed,
            CampaignConfig(probe_mode="sensors", sensor_rounds=3, **base),
            seed=9,
        )
        assert batch.coverage > 0 and sensed.coverage > 0
        ratio = sensed.coverage / batch.coverage
        assert 0.3 < ratio < 3.0


class TestMultiRound:
    def test_rounds_recorded(self, small_testbed):
        cfg = CampaignConfig(
            iterations=1,
            max_cases=5,
            workload=SMALL_WORKLOAD,
            rounds=3,
            drift_sigma=0.1,
        )
        result = run_campaign(small_testbed, cfg, seed=6)
        rounds = {m.round_index for m in result.measurements}
        assert rounds == {0, 1, 2}

    def test_static_vs_rescheduled_both_run(self, small_testbed):
        base = dict(
            iterations=1,
            max_cases=5,
            workload=SMALL_WORKLOAD,
            rounds=2,
            drift_sigma=0.3,
        )
        static = run_campaign(
            small_testbed, CampaignConfig(reschedule=False, **base), seed=7
        )
        dynamic = run_campaign(
            small_testbed, CampaignConfig(reschedule=True, **base), seed=7
        )
        assert len(static) > 0 and len(dynamic) > 0

"""Minimax tree algorithm tests: optimality, ε edge equivalence,
the paper's Figure 7 -> 8 scenario."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minimax import MinimaxTree, build_mmp_tree
from repro.core.paths import path_cost

from tests.core.graphs import (
    DictGraph,
    brute_force_minimax,
    figure6_graph,
    symmetric,
)


def simple_chain() -> DictGraph:
    return DictGraph(
        ["a", "b", "c"],
        symmetric({("a", "b"): 1.0, ("b", "c"): 2.0, ("a", "c"): 5.0}),
    )


class TestBasics:
    def test_root_is_own_parent(self):
        t = build_mmp_tree(simple_chain(), "a")
        assert t.parent["a"] == "a"
        assert t.cost["a"] == 0.0

    def test_unknown_start_raises(self):
        with pytest.raises(KeyError):
            build_mmp_tree(simple_chain(), "zzz")

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            build_mmp_tree(simple_chain(), "a", epsilon=-0.1)

    def test_all_nodes_reached_in_connected_graph(self):
        t = build_mmp_tree(simple_chain(), "a")
        assert len(t) == 3

    def test_unreachable_node_absent(self):
        g = DictGraph(["a", "b", "island"], symmetric({("a", "b"): 1.0}))
        t = build_mmp_tree(g, "a")
        assert not t.reached("island")
        assert t.cost_to("island") == math.inf
        with pytest.raises(KeyError):
            t.path_to("island")

    def test_path_to_self(self):
        t = build_mmp_tree(simple_chain(), "a")
        assert t.path_to("a") == ["a"]
        assert t.next_hop("a") == "a"


class TestMinimaxObjective:
    def test_prefers_relay_over_heavy_direct_edge(self):
        # a->c direct is 5; a->b->c has max edge 2
        t = build_mmp_tree(simple_chain(), "a")
        assert t.path_to("c") == ["a", "b", "c"]
        assert t.cost_to("c") == 2.0

    def test_differs_from_shortest_path(self):
        # additive: a->c direct = 5 vs a->b->c = 3+3=6 -> SP prefers direct;
        # minimax: max(3,3)=3 < 5 -> MMP prefers relay.
        g = DictGraph(
            ["a", "b", "c"],
            symmetric({("a", "b"): 3.0, ("b", "c"): 3.0, ("a", "c"): 5.0}),
        )
        t = build_mmp_tree(g, "a")
        assert t.path_to("c") == ["a", "b", "c"]

    def test_cost_equals_heaviest_edge_on_chosen_path(self):
        g = figure6_graph()
        t = build_mmp_tree(g, "ash.ucsb.edu")
        for dest in g.hosts:
            if dest == "ash.ucsb.edu":
                continue
            assert t.cost_to(dest) == pytest.approx(
                path_cost(g, t.path_to(dest))
            )

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_optimal_vs_brute_force_random_graphs(self, seed):
        """ε = 0 must be exactly optimal on random small graphs."""
        import random

        rng = random.Random(seed)
        n = rng.randint(3, 6)
        hosts = [f"h{i}" for i in range(n)]
        costs = {}
        for i in range(n):
            for j in range(n):
                if i != j:
                    costs[(hosts[i], hosts[j])] = rng.uniform(1, 100)
        g = DictGraph(hosts, costs)
        t = build_mmp_tree(g, hosts[0], epsilon=0.0)
        for dest in hosts[1:]:
            assert t.cost_to(dest) == pytest.approx(
                brute_force_minimax(g, hosts[0], dest)
            )


class TestEdgeEquivalence:
    def test_figure7_strict_tree_takes_marginal_detour(self):
        """ε = 0: the strictly cheaper route to bell.uiuc.edu goes through
        its site peer opus.uiuc.edu (5.0 then LAN 1.0 beats direct 5.1)."""
        g = figure6_graph()
        t = build_mmp_tree(g, "ash.ucsb.edu", epsilon=0.0)
        assert t.path_to("bell.uiuc.edu") == [
            "ash.ucsb.edu",
            "opus.uiuc.edu",
            "bell.uiuc.edu",
        ]

    def test_figure8_epsilon_collapses_detour(self):
        """ε = 0.1: 5.0 is not 10 % better than 5.1, so the direct edge
        survives — the paper's Figure 8 tree."""
        g = figure6_graph()
        t = build_mmp_tree(g, "ash.ucsb.edu", epsilon=0.1)
        assert t.path_to("bell.uiuc.edu") == ["ash.ucsb.edu", "bell.uiuc.edu"]

    def test_epsilon_never_worse_than_factor(self):
        """Every ε-tree path cost is within (1+ε) per relaxation of the
        optimum; in practice check a generous global bound."""
        import random

        rng = random.Random(7)
        hosts = [f"h{i}" for i in range(8)]
        costs = {
            (a, b): rng.uniform(1, 100)
            for a in hosts
            for b in hosts
            if a != b
        }
        g = DictGraph(hosts, costs)
        eps = 0.1
        exact = build_mmp_tree(g, "h0", epsilon=0.0)
        damped = build_mmp_tree(g, "h0", epsilon=eps)
        for dest in hosts[1:]:
            got = path_cost(g, damped.path_to(dest))
            opt = exact.cost_to(dest)
            assert got <= opt * (1 + eps) ** len(hosts) + 1e-9

    def test_epsilon_reduces_or_preserves_tree_depth(self):
        """Edge equivalence 'serves to dampen adding unnecessary edges':
        total relayed destinations cannot grow with ε on this graph."""
        g = figure6_graph()
        t0 = build_mmp_tree(g, "ash.ucsb.edu", epsilon=0.0)
        t1 = build_mmp_tree(g, "ash.ucsb.edu", epsilon=0.1)
        depth0 = sum(len(t0.path_to(d)) for d in g.hosts)
        depth1 = sum(len(t1.path_to(d)) for d in g.hosts)
        assert depth1 <= depth0

    def test_huge_epsilon_yields_star(self):
        """With ε large enough nothing beats a direct edge: the tree is a
        star around the root."""
        g = figure6_graph()
        t = build_mmp_tree(g, "ash.ucsb.edu", epsilon=100.0)
        for dest in g.hosts:
            if dest != "ash.ucsb.edu":
                assert t.path_to(dest) == ["ash.ucsb.edu", dest]

    def test_genuinely_better_routes_survive_epsilon(self):
        """ε must not kill large improvements — only marginal ones."""
        t = build_mmp_tree(simple_chain(), "a", epsilon=0.1)
        assert t.path_to("c") == ["a", "b", "c"]  # 2.0 vs 5.0 is >> 10%


class TestRelayNodeRestriction:
    def chain(self):
        return DictGraph(
            ["a", "b", "c"],
            symmetric({("a", "b"): 1.0, ("b", "c"): 1.0, ("a", "c"): 10.0}),
        )

    def test_unrestricted_uses_midpoint(self):
        t = build_mmp_tree(self.chain(), "a")
        assert t.path_to("c") == ["a", "b", "c"]

    def test_forbidden_relay_forces_direct(self):
        t = build_mmp_tree(self.chain(), "a", relay_nodes=set())
        assert t.path_to("c") == ["a", "c"]
        assert t.cost_to("c") == 10.0

    def test_allowed_relay_still_used(self):
        t = build_mmp_tree(self.chain(), "a", relay_nodes={"b"})
        assert t.path_to("c") == ["a", "b", "c"]

    def test_start_node_always_forwards(self):
        # the start is never a "relay"; restriction must not orphan it
        t = build_mmp_tree(self.chain(), "a", relay_nodes=set())
        assert t.reached("b") and t.reached("c")

    def test_restricted_cost_never_better(self):
        g = figure6_graph()
        free = build_mmp_tree(g, "ash.ucsb.edu")
        caged = build_mmp_tree(
            g, "ash.ucsb.edu", relay_nodes={"elm.ucsb.edu"}
        )
        for dest in g.hosts:
            if dest == "ash.ucsb.edu":
                continue
            assert caged.cost_to(dest) >= free.cost_to(dest) - 1e-12


class TestDampedCostConsistency:
    def test_stored_cost_equals_path_cost_with_epsilon(self):
        """Appendix A stores relax_cost, which must equal the heaviest
        edge on the adopted path even when epsilon prunes candidates."""
        g = figure6_graph()
        t = build_mmp_tree(g, "ash.ucsb.edu", epsilon=0.1)
        for dest in g.hosts:
            if dest == "ash.ucsb.edu":
                continue
            assert t.cost_to(dest) == pytest.approx(
                path_cost(g, t.path_to(dest))
            )


class TestNextHop:
    def test_next_hop_matches_path(self):
        g = figure6_graph()
        t = build_mmp_tree(g, "ash.ucsb.edu", epsilon=0.0)
        for dest in g.hosts:
            if dest == "ash.ucsb.edu":
                continue
            assert t.next_hop(dest) == t.path_to(dest)[1]

"""Fluid network simulator substrate.

The paper's measurements ran on real WAN paths (UCSB, UIUC, UF, Abilene POPs
at Denver and Houston).  We have no WAN, so this package provides the
substitute: a discrete-time *fluid* model of TCP connections over
parameterised paths, faithful to the dynamics the paper identifies as the
source of the logistical effect:

* slow start doubles the congestion window once per RTT, so ramp time is
  proportional to RTT;
* the steady-state congestion-avoidance throughput under loss follows the
  Mathis ``MSS/(RTT*sqrt(p))`` law, again inversely proportional to RTT;
* socket buffers clamp the window, capping throughput at ``buffer/RTT``;
* a relay depot pipelines data through a bounded buffer, so the end-to-end
  rate is set by the slowest sublink, and a fast upstream link stalls once
  the depot buffer fills (the 32 MB kink in the paper's Figure 5).

Public entry points are :class:`~repro.net.simulator.NetworkSimulator` for
running transfers and :class:`~repro.net.topology.PathSpec` for describing
paths.
"""

from repro.net.topology import LinkSpec, PathSpec, Topology
from repro.net.tcp import TcpConfig, TcpState
from repro.net.flow import FluidTcpFlow, FileSource, SinkBuffer
from repro.net.depot_sim import DepotBuffer, RelayPipeline
from repro.net.simulator import NetworkSimulator, TransferResult
from repro.net.trace import SeqTrace, average_traces, resample_trace
from repro.net.contention import (
    ContendedScenario,
    SharedLink,
    TransferOutcome,
    jain_index,
)
from repro.net.export import load_traces, save_traces, trace_from_csv, trace_to_csv

__all__ = [
    "LinkSpec",
    "PathSpec",
    "Topology",
    "TcpConfig",
    "TcpState",
    "FluidTcpFlow",
    "FileSource",
    "SinkBuffer",
    "DepotBuffer",
    "RelayPipeline",
    "NetworkSimulator",
    "TransferResult",
    "SeqTrace",
    "average_traces",
    "resample_trace",
    "ContendedScenario",
    "SharedLink",
    "TransferOutcome",
    "jain_index",
    "load_traces",
    "save_traces",
    "trace_from_csv",
    "trace_to_csv",
]

"""Labelled metric series: counters, gauges and histograms.

The paper's evaluation is built from per-sublink measurements — byte
counts, throughputs, depot buffer occupancy — so every instrument here
carries a label set (``{"node": "depot0"}``) identifying *which*
sublink, depot or session a sample belongs to.  Rule RPR011 enforces
that call sites outside this package always pass labels.

A :class:`Registry` owns the series.  Instruments are created on first
use and are cheap to re-request (the registry interns them by
``(name, labels)``), so hot paths can either hoist the instrument out
of the loop or call through the registry each time.

No-op mode
----------
``Registry(enabled=False)`` (or the shared :data:`NULL_REGISTRY`)
returns shared do-nothing instruments from every factory call: no dict
lookups, no locking, no allocation per update.  Transports default to
the null registry, so an uninstrumented run pays one attribute load and
one no-op call per chunk — observability is free until asked for.
"""

from __future__ import annotations

import re
import threading
from typing import Iterable, Mapping

#: Prometheus-compatible metric and label name shapes.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in seconds (session durations).
DEFAULT_BUCKETS = (0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)

#: Canonical key form of one label set.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> LabelKey:
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (bytes, sessions, retries)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey, lock: threading.Lock):
        self.name = name
        self.labels = labels
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> dict:
        """The serialised form used by the JSON exporter."""
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge(Counter):
    """A value that can go up and down (occupancy, throughput)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the value."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the value."""
        self.inc(-amount)

    def set(self, value: float) -> None:
        """Replace the value."""
        with self._lock:
            self._value = float(value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        lock: threading.Lock,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self._lock = lock
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        with self._lock:
            self._sum += value
            self._count += 1
            # per-bucket (non-cumulative) counts; sample() cumulates
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break

    def sample(self) -> dict:
        """The serialised form: cumulative buckets plus sum/count."""
        with self._lock:
            cumulative = []
            running = 0
            for count, bound in zip(self._counts, self.buckets):
                running += count
                cumulative.append([bound, running])
            return {
                "name": self.name,
                "type": self.kind,
                "labels": dict(self.labels),
                "sum": self._sum,
                "count": self._count,
                "buckets": cumulative,
            }


class _NullInstrument:
    """Shared sink for disabled registries: every update is a no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class Registry:
    """A set of labelled metric series behind one lock.

    Parameters
    ----------
    enabled:
        ``False`` turns every factory into a constant returning the
        shared no-op instrument — the near-zero-cost mode transports
        default to.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._series: dict[tuple[str, LabelKey], object] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, cls, name: str, labels, **kwargs):
        if not self.enabled:
            return _NULL_INSTRUMENT
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._series.get(key)
            if instrument is None:
                kind = self._kinds.get(name)
                if kind is not None and kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {kind}, "
                        f"cannot re-register as {cls.kind}"
                    )
                # per-instrument lock: updates never contend with the
                # registry-wide series map
                instrument = cls(name, key[1], threading.Lock(), **kwargs)
                self._series[key] = instrument
                self._kinds[name] = cls.kind
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, cannot re-register as {cls.kind}"
                )
            return instrument

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Counter:
        """Get or create the counter series for ``(name, labels)``."""
        return self._get(Counter, name, labels)

    def gauge(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Gauge:
        """Get or create the gauge series for ``(name, labels)``."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram series for ``(name, labels)``."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def series(self) -> list[dict]:
        """Serialised snapshot of every series, sorted by name then labels."""
        with self._lock:
            instruments = list(self._series.values())
        samples = [inst.sample() for inst in instruments]
        samples.sort(key=lambda s: (s["name"], sorted(s["labels"].items())))
        return samples

    def to_prometheus(self) -> str:
        """Render the current state in the Prometheus text format."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self.series())

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)


#: The shared disabled registry: instrument anything, measure nothing.
NULL_REGISTRY = Registry(enabled=False)

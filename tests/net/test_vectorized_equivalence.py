"""Differential tests: the vectorized batch engine IS the scalar model.

The contract of ``NetworkSimulator.run_batch(vectorized=True)`` is not
"close to" the scalar simulator — it is *bit-exact*: batching
independent chains into numpy lockstep only reorders their interleaving
while every per-chain float operation stays the identical IEEE-754
double op.  These tests pin that contract over seeded random topologies
and fault plans, comparing every observable:

* transfer results (durations, loss events, depot peaks, retransmission
  and retry accounting, completion flags),
* per-sublink sequence traces, element for element,
* per-(node, stream) timeline event sequences — the same equivalence
  the sim-vs-socket tests assert in ``tests/net/test_sim_failover.py``
  and ``tests/lsl/test_failover.py``, here between the two simulator
  paths.

Any future "optimization" of either path that changes a single float
shows up here as a hard failure, which is the point: the scalar path is
the conformance oracle, the vectorized path is the speed.
"""

import random

import numpy as np
import pytest

from repro.lsl.faults import RetryPolicy
from repro.net.simulator import (
    FaultedTransferResult,
    NetworkSimulator,
    SublinkFault,
    TransferResult,
)
from repro.net.tcp import TcpConfig
from repro.net.topology import PathSpec
from repro.net.vectorized import BatchSpec, VectorizedBatch
from repro.obs.timeline import SessionTimeline

RTTS = [0.01, 0.02, 0.04, 0.08]
BANDWIDTHS = [2e6, 5e6, 1e7, 2e7]
LOSS_RATES = [0.0, 0.0005, 0.002]
SIZES = [256 << 10, 512 << 10, 1 << 20]


def random_spec(rng: random.Random) -> BatchSpec:
    """One random relay chain, possibly with a fault plan."""
    n = rng.choice([1, 1, 2, 2, 3])
    paths = tuple(
        PathSpec(
            rtt=rng.choice(RTTS),
            bandwidth=rng.choice(BANDWIDTHS),
            loss_rate=rng.choice(LOSS_RATES),
        )
        for _ in range(n)
    )
    faults: tuple = ()
    retry = None
    resume = True
    if rng.random() < 0.45:
        faults = tuple(
            SublinkFault(
                rng.randrange(n),
                rng.choice([32 << 10, 100 << 10]),
                times=rng.choice([1, 1, 2, 4]),
            )
            for _ in range(rng.choice([1, 2]))
        )
        retry = RetryPolicy(
            max_retries=rng.choice([1, 2, 3]),
            jitter=0.25,
            seed=rng.randrange(1000),
        )
        if n == 1 and rng.random() < 0.3:
            resume = False  # plain-TCP restart recovery (direct only)
    configs = None
    if rng.random() < 0.3:
        configs = tuple(
            TcpConfig(initial_ssthresh=rng.choice([None, 64 << 10, 1 << 20]))
            for _ in range(n)
        )
    caps = None
    if n > 1 and rng.random() < 0.3:
        caps = tuple(
            rng.choice([8 << 20, 16 << 20, 32 << 20]) for _ in range(n - 1)
        )
    return BatchSpec(
        paths=paths,
        size=rng.choice(SIZES),
        faults=faults,
        retry=retry,
        resume=resume,
        depot_capacities=caps,
        configs=configs,
    )


def clone_spec(spec: BatchSpec, seed: int) -> BatchSpec:
    """Fresh retry-policy instance so both runs see identical backoff."""
    retry = None
    if spec.retry is not None:
        retry = RetryPolicy(
            max_retries=spec.retry.max_retries, jitter=0.25, seed=seed
        )
    return BatchSpec(
        paths=spec.paths,
        size=spec.size,
        faults=spec.faults,
        retry=retry,
        resume=spec.resume,
        depot_capacities=spec.depot_capacities,
        configs=spec.configs,
    )


def run_both(specs, seed=0, record_trace=True, with_timeline=False):
    """Run the same batch through both paths; return results (+timelines)."""
    seeds = [17 * i + 3 for i in range(len(specs))]
    sessions = [f"s{i}" for i in range(len(specs))]
    tl_v = SessionTimeline() if with_timeline else None
    tl_s = SessionTimeline() if with_timeline else None
    vec = NetworkSimulator(seed=seed).run_batch(
        [clone_spec(s, seeds[i]) for i, s in enumerate(specs)],
        vectorized=True,
        record_trace=record_trace,
        timeline=tl_v,
        sessions=sessions if with_timeline else None,
    )
    scal = NetworkSimulator(seed=seed).run_batch(
        [clone_spec(s, seeds[i]) for i, s in enumerate(specs)],
        vectorized=False,
        record_trace=record_trace,
        timeline=tl_s,
        sessions=sessions if with_timeline else None,
    )
    return vec, scal, tl_v, tl_s, sessions


def assert_result_identical(a: TransferResult, b: TransferResult) -> None:
    assert type(a) is type(b)
    assert a.size == b.size
    assert a.duration == b.duration  # exact: same float ops, same order
    assert a.loss_events == b.loss_events
    assert a.depot_peaks == b.depot_peaks
    assert len(a.traces) == len(b.traces)
    for ta, tb in zip(a.traces, b.traces):
        assert ta.name == tb.name
        assert np.array_equal(ta.times, tb.times)
        assert np.array_equal(ta.acked, tb.acked)
    if isinstance(b, FaultedTransferResult):
        assert a.retransmitted_bytes == b.retransmitted_bytes
        assert a.clean_duration == b.clean_duration
        assert a.recovery_seconds == b.recovery_seconds
        assert a.retries == b.retries
        assert a.completed == b.completed
        assert a.per_sublink_retransmitted == b.per_sublink_retransmitted


class TestSeededRandomEquivalence:
    """The core differential sweep: random topologies + fault plans."""

    @pytest.mark.parametrize("trial", range(4))
    def test_results_and_traces_identical(self, trial):
        rng = random.Random(4100 + trial)
        specs = [random_spec(rng) for _ in range(6)]
        vec, scal, _, _, _ = run_both(specs, seed=trial)
        assert len(vec) == len(scal) == len(specs)
        for a, b in zip(vec, scal):
            assert_result_identical(a, b)

    @pytest.mark.parametrize("trial", range(2))
    def test_timeline_sequences_identical(self, trial):
        rng = random.Random(4300 + trial)
        specs = [random_spec(rng) for _ in range(5)]
        vec, scal, tl_v, tl_s, sessions = run_both(
            specs, seed=trial, with_timeline=True
        )
        for a, b in zip(vec, scal):
            assert_result_identical(a, b)
        for session in sessions:
            # per-(node, stream) ordered event names — the equivalence
            # currency shared with the sim-vs-socket tests
            assert tl_v.sequences(session) == tl_s.sequences(session)
            ev_v = [
                (e.event, e.node, e.stream, e.t, e.nbytes, e.detail)
                for e in tl_v.events(session)
            ]
            ev_s = [
                (e.event, e.node, e.stream, e.t, e.nbytes, e.detail)
                for e in tl_s.events(session)
            ]
            assert ev_v == ev_s

    def test_faulted_specs_exercise_every_recovery_shape(self):
        """A hand-built batch covering resume, restart and exhaustion."""
        path = PathSpec(rtt=0.02, bandwidth=1e7)
        lossy = PathSpec(rtt=0.04, bandwidth=5e6, loss_rate=0.001)
        specs = [
            # depot-resume recovery mid-relay
            BatchSpec(
                paths=(path, lossy),
                size=1 << 20,
                faults=(SublinkFault(1, 128 << 10),),
                retry=RetryPolicy(),
            ),
            # plain-TCP restart from byte zero (direct path)
            BatchSpec(
                paths=(path,),
                size=512 << 10,
                faults=(SublinkFault(0, 64 << 10),),
                retry=RetryPolicy(),
                resume=False,
            ),
            # retry exhaustion: more consecutive kills than the budget
            BatchSpec(
                paths=(path, path),
                size=1 << 20,
                faults=(SublinkFault(0, 32 << 10, times=5),),
                retry=RetryPolicy(max_retries=2, base_delay=0.01),
            ),
        ]
        vec, scal, tl_v, tl_s, sessions = run_both(
            specs, with_timeline=True
        )
        for a, b in zip(vec, scal):
            assert isinstance(a, FaultedTransferResult)
            assert_result_identical(a, b)
        assert vec[0].completed and vec[1].completed
        assert not vec[2].completed  # the exhaustion lane really aborted
        assert vec[0].retransmitted_bytes > 0
        for session in sessions:
            assert tl_v.sequences(session) == tl_s.sequences(session)


class TestBatchContract:
    """API-level contract of run_batch and BatchSpec."""

    def test_result_types_match_spec_shapes(self):
        path = PathSpec(rtt=0.02, bandwidth=1e7)
        specs = [
            BatchSpec(paths=(path,), size=256 << 10),
            BatchSpec(
                paths=(path, path),
                size=256 << 10,
                faults=(SublinkFault(0, 32 << 10),),
                retry=RetryPolicy(),
            ),
        ]
        results = NetworkSimulator().run_batch(specs)
        assert type(results[0]) is TransferResult
        assert isinstance(results[1], FaultedTransferResult)

    def test_empty_batch_returns_empty(self):
        assert NetworkSimulator().run_batch([]) == []

    def test_vectorized_rejects_random_loss_mode(self):
        spec = BatchSpec(
            paths=(PathSpec(rtt=0.02, bandwidth=1e7, loss_rate=0.01),),
            size=256 << 10,
            configs=(TcpConfig(loss_mode="random"),),
        )
        with pytest.raises(ValueError, match="deterministic"):
            NetworkSimulator().run_batch([spec], vectorized=True)
        # the scalar path still accepts random loss
        results = NetworkSimulator(seed=3).run_batch(
            [spec], vectorized=False
        )
        assert results[0].duration > 0

    def test_spec_validation(self):
        path = PathSpec(rtt=0.02, bandwidth=1e7)
        with pytest.raises(ValueError):
            BatchSpec(paths=(), size=1)
        with pytest.raises(ValueError):
            BatchSpec(paths=(path,), size=0)
        with pytest.raises(ValueError):  # configs length mismatch
            BatchSpec(paths=(path, path), size=1, configs=(TcpConfig(),))
        with pytest.raises(ValueError):  # restart recovery needs direct
            BatchSpec(paths=(path, path), size=1, resume=False)
        with pytest.raises(ValueError):  # fault beyond the chain
            BatchSpec(
                paths=(path,), size=1, faults=(SublinkFault(1, 0.0),)
            )

    def test_depot_capacity_validation(self):
        path = PathSpec(rtt=0.02, bandwidth=1e7)
        spec = BatchSpec(
            paths=(path, path), size=1 << 20, depot_capacities=(1,)
        )
        batch = VectorizedBatch([spec], TcpConfig(), [0.001])
        assert batch.depot_capacity[0, 0] == 1.0
        with pytest.raises(ValueError):
            VectorizedBatch(
                [
                    BatchSpec(
                        paths=(path, path, path),
                        size=1 << 20,
                        depot_capacities=(8 << 20,),
                    )
                ],
                TcpConfig(),
                [0.001],
            )

    def test_max_time_raises_like_the_scalar_path(self):
        spec = BatchSpec(
            paths=(PathSpec(rtt=0.02, bandwidth=1e3),), size=1 << 20
        )
        with pytest.raises(RuntimeError):
            NetworkSimulator().run_batch(
                [spec], vectorized=True, max_time=0.5
            )
        with pytest.raises(RuntimeError):
            NetworkSimulator().run_batch(
                [spec], vectorized=False, max_time=0.5
            )

    def test_batch_matches_individual_scalar_runs(self):
        """One batch result == the corresponding standalone runner call."""
        path_a = PathSpec(rtt=0.02, bandwidth=1e7)
        path_b = PathSpec(rtt=0.04, bandwidth=5e6, loss_rate=0.001)
        specs = [
            BatchSpec(paths=(path_a,), size=512 << 10),
            BatchSpec(paths=(path_a, path_b), size=1 << 20),
        ]
        batch = NetworkSimulator(seed=9).run_batch(
            specs, vectorized=True, record_trace=True
        )
        solo_direct = NetworkSimulator(seed=9).run_direct(
            path_a, 512 << 10, record_trace=True
        )
        solo_relay = NetworkSimulator(seed=9).run_relay(
            [path_a, path_b], 1 << 20, record_trace=True
        )
        assert batch[0].duration == solo_direct.duration
        assert batch[1].duration == solo_relay.duration
        assert batch[1].depot_peaks == solo_relay.depot_peaks
        for ta, tb in zip(batch[1].traces, solo_relay.traces):
            assert np.array_equal(ta.times, tb.times)
            assert np.array_equal(ta.acked, tb.acked)

"""The ratchet baseline: grandfather old findings, block new ones."""

import shutil
from pathlib import Path

import pytest

from repro.analysis import Baseline, run_paths

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def dirty_dir(tmp_path):
    """A mutable copy of the robustness fixtures outside ``tests/``."""
    copy = tmp_path / "robustness"
    shutil.copytree(FIXTURES / "robustness", copy)
    return copy


def test_baseline_mutes_recorded_findings(dirty_dir):
    first = run_paths([dirty_dir])
    assert len(first.findings) == 6
    baseline = Baseline.from_findings(first.findings)

    second = run_paths([dirty_dir], baseline=baseline)
    assert second.clean
    assert second.baselined == 6


def test_grown_group_surfaces_whole(dirty_dir):
    baseline = Baseline.from_findings(run_paths([dirty_dir]).findings)

    bad = dirty_dir / "bad_robust.py"
    bad.write_text(
        bad.read_text()
        + "\n\ndef worse(job):\n    try:\n        job()\n"
        + "    except:\n        pass\n"
    )
    result = run_paths([dirty_dir], baseline=baseline)
    # RPR008 for that file grew 1 -> 2: BOTH lines surface (the
    # offender sees every candidate), other groups stay muted
    assert sorted(f.rule for f in result.findings) == ["RPR008", "RPR008"]
    assert result.baselined == 5


def test_fixing_a_finding_needs_no_baseline_edit(dirty_dir):
    baseline = Baseline.from_findings(run_paths([dirty_dir]).findings)

    bad = dirty_dir / "bad_robust.py"
    text = bad.read_text().replace("except:", "except ValueError:")
    bad.write_text(text)
    result = run_paths([dirty_dir], baseline=baseline)
    assert result.clean  # fewer findings than allowed is progress


def test_roundtrip_and_allowance(tmp_path):
    baseline = Baseline(entries={"src/a.py::RPR001": 2})
    path = tmp_path / "base.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.allowance("src/a.py", "RPR001") == 2
    assert loaded.allowance("src/a.py", "RPR002") == 0
    assert loaded.allowance("src/b.py", "RPR001") == 0


@pytest.mark.parametrize(
    "payload",
    [
        "[]",
        '{"version": 2, "entries": {}}',
        '{"version": 1, "entries": {"k": -1}}',
        '{"version": 1, "entries": {"k": "many"}}',
    ],
)
def test_malformed_baseline_is_an_error(tmp_path, payload):
    path = tmp_path / "base.json"
    path.write_text(payload)
    with pytest.raises(ValueError):
        Baseline.load(path)

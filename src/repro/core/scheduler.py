"""The logistical scheduler: performance matrix in, forwarding routes out.

"The scheduling system takes a fully-connected map of the network as its
graph and produces a path tree from each node to all others.  For hop by
hop routing, the MMP tree is reduced to a list of destinations and the
next hop along the chosen path.  These destination/next hop tuples form a
'route table' that is consumed by the logistical depot and used to
control forwarding." (Section 4.2)

Two extensions flagged by the paper are implemented behind options:

* **host throughput as an edge** — "the scheduling algorithms can be
  trivially extended to include the path through the host as another
  edge whose bandwidth must be taken into account" (Section 6).  Pass
  ``host_bandwidth`` to cap relayed paths by each depot's forwarding
  capacity.
* **avoiding LSL when it would lose** — "in the cases where the
  performance failed to improve we should have avoided using LSL at all"
  (Section 4.2).  Pass ``min_gain`` to require the scheduled path to
  beat the direct edge by a margin before a depot route is issued.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.minimax import (
    CostGraph,
    MinimaxTree,
    build_mmp_tree,
    repair_mmp_tree,
)
from repro.core.epsilon import EpsilonPolicy, RelativeEpsilon
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class ScheduleDecision:
    """The scheduler's verdict for one (source, destination) pair.

    Attributes
    ----------
    route:
        Full host sequence, source first.  Length 2 means direct.
    use_lsl:
        True when the route traverses at least one depot.
    direct_cost:
        Cost (1/bandwidth) of the direct edge.
    scheduled_cost:
        Minimax cost of the chosen route.
    predicted_gain:
        ``direct_cost / scheduled_cost`` — the scheduler's expected
        speedup factor (1.0 for direct routes; > 1 when a depot route is
        predicted to win).
    """

    route: list[str]
    use_lsl: bool
    direct_cost: float
    scheduled_cost: float

    @property
    def predicted_gain(self) -> float:
        if self.scheduled_cost <= 0:
            return 1.0
        if not math.isfinite(self.direct_cost):
            return math.inf
        return self.direct_cost / self.scheduled_cost

    @property
    def depots(self) -> list[str]:
        """Intermediate hosts along the route."""
        return self.route[1:-1]


class _HostCappedGraph:
    """Cost view that charges each *intermediate* hop the depot's own
    forwarding limit: edge cost out of a depot is at least
    ``1 / host_bandwidth[depot]``.

    The source and sink are not capped — their host path is part of the
    application either way.
    """

    def __init__(self, graph: CostGraph, host_bandwidth: dict[str, float]):
        self._graph = graph
        self.hosts = list(graph.hosts)
        self._host_cost = {
            h: (1.0 / bw if bw > 0 else math.inf)
            for h, bw in host_bandwidth.items()
        }

    def cost(self, src: str, dst: str) -> float:
        base = self._graph.cost(src, dst)
        return max(base, self._host_cost.get(src, 0.0))

    def cost_matrix(self) -> np.ndarray:
        """Dense capped costs, aligned with :attr:`hosts` order.

        Only available when the wrapped graph exposes ``cost_matrix``
        (raises :class:`AttributeError` otherwise, like a missing
        method would).
        """
        base = self._graph.cost_matrix()
        caps = np.array([self._host_cost.get(h, 0.0) for h in self.hosts])
        return np.maximum(base, caps[:, None])


class LogisticalScheduler:
    """Builds MMP trees over a performance matrix and issues routes.

    Parameters
    ----------
    graph:
        Anything exposing ``hosts`` and ``cost(src, dst)`` — typically a
        :class:`repro.nws.matrix.PerformanceMatrix`.
    epsilon:
        Edge-equivalence policy or plain float; defaults to the paper's
        10 % rule.
    host_bandwidth:
        Optional per-host forwarding capacity (bytes/sec) applied to
        intermediate hops (the Section-6 extension).  Hosts absent from
        the mapping are uncapped.
    min_gain:
        Issue a depot route only when its predicted gain exceeds this
        factor (1.0 reproduces the paper's behaviour: any nominally
        better multi-hop path is used).
    depot_hosts:
        If given, only these hosts may serve as intermediate depots
        (the Abilene experiment restricts relaying to the POP depots).
    """

    def __init__(
        self,
        graph: CostGraph,
        epsilon: EpsilonPolicy | float | None = None,
        host_bandwidth: dict[str, float] | None = None,
        min_gain: float = 1.0,
        depot_hosts: set[str] | None = None,
    ) -> None:
        if epsilon is None:
            self._epsilon_policy: EpsilonPolicy = RelativeEpsilon()
        elif isinstance(epsilon, EpsilonPolicy):
            self._epsilon_policy = epsilon
        else:
            check_non_negative("epsilon", epsilon)
            self._epsilon_policy = RelativeEpsilon(epsilon)
        if min_gain < 1.0:
            raise ValueError(f"min_gain={min_gain} must be >= 1.0")
        self.min_gain = min_gain
        self._graph: CostGraph = (
            _HostCappedGraph(graph, host_bandwidth)
            if host_bandwidth
            else graph
        )
        self._base_graph = graph
        self.depot_hosts = set(depot_hosts) if depot_hosts is not None else None
        self._trees: dict[str, MinimaxTree] = {}
        self._route_tables: dict[str, tuple[float, dict[str, str]]] = {}
        self._dense: np.ndarray | None = None

    # -- tree management ----------------------------------------------------
    @property
    def epsilon(self) -> float:
        """The ε currently produced by the policy."""
        return self._epsilon_policy.value()

    @property
    def hosts(self) -> list[str]:
        return list(self._graph.hosts)

    def tree(self, source: str) -> MinimaxTree:
        """The (cached) MMP tree rooted at ``source``."""
        cached = self._trees.get(source)
        if cached is None or cached.epsilon != self.epsilon:
            cached = build_mmp_tree(
                self._graph, source, self.epsilon, relay_nodes=self.depot_hosts
            )
            self._trees[source] = cached
        return cached

    def invalidate(self) -> None:
        """Drop cached trees — call after the performance matrix changes.

        The paper re-ran the scheduler every 5 minutes in the PlanetLab
        experiment; the experiment harness calls this on each re-run.
        """
        self._trees.clear()
        self._route_tables.clear()
        self._dense = None

    def _dense_cost(self) -> np.ndarray | None:
        """Cached dense cost matrix for the repair fast path (or None)."""
        if self._dense is None and hasattr(self._graph, "cost_matrix"):
            try:
                self._dense = self._graph.cost_matrix()
            except AttributeError:
                return None
        return self._dense

    # -- decisions ------------------------------------------------------------
    def decide(self, source: str, dest: str) -> ScheduleDecision:
        """Route one pair: depot forwarding if predicted better, else direct."""
        if source == dest:
            raise ValueError("source and destination are the same host")
        return self._decision(self.tree(source), source, dest)

    def reroute(
        self,
        source: str,
        dest: str,
        avoid: set[str] | list[str],
        incremental: bool = True,
    ) -> ScheduleDecision:
        """Recompute the minimax route with failed depots excluded.

        Failure recovery's scheduling half: when a depot stops answering
        mid-transfer, the session is re-issued over the best route that
        does not traverse any host in ``avoid``.  Endpoints cannot be
        avoided (a dead endpoint has no route at all); avoided hosts are
        only barred from serving as intermediate depots.  Falls back to
        the direct edge when no surviving depot route beats it.

        The filtered tree is never cached — fault handling must see the
        exclusion immediately, and the cache keeps serving the
        fault-free topology.  By default it is *repaired* out of the
        cached fault-free tree (:func:`repair_mmp_tree`), which scales
        with the avoided depots' blast radius instead of the graph;
        ``incremental=False`` forces the original from-scratch rebuild
        and serves as the repair's conformance oracle in the tests.
        """
        avoid = set(avoid)
        if source in avoid or dest in avoid:
            raise ValueError(
                f"cannot avoid session endpoint(s): "
                f"{sorted(avoid & {source, dest})}"
            )
        if incremental:
            tree = repair_mmp_tree(
                self._graph,
                self.tree(source),
                avoid,
                dense=self._dense_cost(),
            )
        else:
            allowed = (
                set(self.depot_hosts)
                if self.depot_hosts is not None
                else set(self._graph.hosts)
            )
            allowed -= avoid
            tree = build_mmp_tree(
                self._graph, source, self.epsilon, relay_nodes=allowed
            )
        return self._decision(tree, source, dest)

    def _decision(
        self, tree: MinimaxTree, source: str, dest: str
    ) -> ScheduleDecision:
        """Turn one MMP tree lookup into a schedule decision."""
        direct_cost = self._graph.cost(source, dest)
        if not tree.reached(dest):
            # no multi-hop route either; fall back to the direct edge
            return ScheduleDecision(
                route=[source, dest],
                use_lsl=False,
                direct_cost=direct_cost,
                scheduled_cost=direct_cost,
            )
        route = tree.path_to(dest)
        scheduled_cost = tree.cost_to(dest)
        gain = (
            direct_cost / scheduled_cost
            if scheduled_cost > 0 and math.isfinite(direct_cost)
            else math.inf
        )
        if len(route) > 2 and gain >= self.min_gain:
            return ScheduleDecision(
                route=route,
                use_lsl=True,
                direct_cost=direct_cost,
                scheduled_cost=scheduled_cost,
            )
        return ScheduleDecision(
            route=[source, dest],
            use_lsl=False,
            direct_cost=direct_cost,
            scheduled_cost=direct_cost,
        )

    def route(self, source: str, dest: str) -> list[str]:
        """Shorthand: the chosen host sequence for a pair."""
        return self.decide(source, dest).route

    # -- route tables ---------------------------------------------------------
    def route_table(self, node: str) -> dict[str, str]:
        """Destination → next-hop entries for ``node``'s depot.

        Walks the MMP tree rooted at ``node`` exactly as Section 4.2
        describes.  Destinations whose decision is direct map to
        themselves.

        The flattening is memoized: the tree's first hops are computed
        in one pass (:meth:`MinimaxTree.first_hops`) and the finished
        table is cached per node until :meth:`invalidate` or an ε
        change — a scheduler sweep touches every (node, dest) pair, and
        per-pair ``decide()`` walks were the dominant cost.
        """
        hit = self._route_tables.get(node)
        if hit is not None and hit[0] == self.epsilon:
            return dict(hit[1])
        tree = self.tree(node)
        hops = tree.first_hops()
        table: dict[str, str] = {}
        for dest in self._graph.hosts:
            if dest == node:
                continue
            # mirror decide(): a depot hop is issued only for a reached,
            # relayed destination whose predicted gain clears min_gain
            first = hops.get(dest)
            hop = dest
            if first is not None and first != dest:
                direct_cost = self._graph.cost(node, dest)
                scheduled_cost = tree.cost_to(dest)
                gain = (
                    direct_cost / scheduled_cost
                    if scheduled_cost > 0 and math.isfinite(direct_cost)
                    else math.inf
                )
                if gain >= self.min_gain:
                    hop = first
            table[dest] = hop
        self._route_tables[node] = (self.epsilon, table)
        return dict(table)

    def all_route_tables(self) -> dict[str, dict[str, str]]:
        """Route tables for every host (one scheduler sweep)."""
        return {node: self.route_table(node) for node in self._graph.hosts}

    # -- statistics -------------------------------------------------------------
    def coverage(self) -> float:
        """Fraction of ordered pairs given a depot route.

        The paper: "The scheduler identified better routes via depots for
        26 % of the total number of paths in the system."
        """
        hosts = self._graph.hosts
        total = 0
        relayed = 0
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                total += 1
                if self.decide(src, dst).use_lsl:
                    relayed += 1
        return relayed / total if total else 0.0

    def lsl_pairs(self) -> list[tuple[str, str]]:
        """All ordered pairs for which a depot route was issued."""
        return [
            (src, dst)
            for src in self._graph.hosts
            for dst in self._graph.hosts
            if src != dst and self.decide(src, dst).use_lsl
        ]

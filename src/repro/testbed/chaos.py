"""Chaos soak harness: randomized fault schedules, checked invariants.

The fault battery in ``tests/lsl/test_faults.py`` pins *specific*
scenarios; this module complements it with *volume*: seeded random
episodes, each a fresh relay chain — or, with ``topology="multicast"``,
a fresh randomized staging tree — with a randomized
:class:`~repro.lsl.faults.FaultPlan` (refusals, mid-stream kills,
corrupt headers, stalled depots; tree episodes add mid-staging depot
deaths and random striping), run against the socket transport and/or
the fluid simulator, with end-to-end integrity invariants checked
after every episode:

* every completed transfer is byte-exact (delivered == sent, which
  also rules out duplicated or reordered ranges — the payload is
  pseudo-random, so any ledger double-append would corrupt it);
* a failed transfer failed *cleanly*
  (:class:`~repro.lsl.faults.RetryExhausted`), never silently;
* connection attempts stay within the retry policy's budget;
* retransmitted bytes never exceed what the attempt count allows;
* no ``lsl:*`` thread survives the episode (servers close fully).

Every episode derives from ``ChaosConfig.seed`` through named
:class:`~repro.util.rng.RngStream` children, so a failing episode
replays exactly from its seed and index — the report records both.

Run it via :func:`run_chaos` or the ``repro chaos`` CLI; CI smokes a
short seeded soak, and the ``chaos``-marked pytest soak runs longer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.lsl.faults import (
    FaultKind,
    FaultPlan,
    FaultRule,
    RetryExhausted,
    RetryPolicy,
)
from repro.util.rng import RngStream
from repro.util.validation import check_positive, check_positive_int

#: Stacks an episode can run against.
STACKS = ("socket", "simulator")

#: Topologies an episode can exercise: a linear relay chain, or a
#: randomized multicast staging tree with a mid-staging depot kill.
TOPOLOGIES = ("relay", "multicast")

#: Fault kinds the schedule generator draws from.
_KINDS = (
    FaultKind.DROP,
    FaultKind.REFUSE,
    FaultKind.STALL,
    FaultKind.CORRUPT_HEADER,
)


@dataclass(frozen=True)
class ChaosConfig:
    """Parameters of one chaos soak.

    Attributes
    ----------
    episodes:
        Episodes per stack.
    seed:
        Root seed; episode ``i`` derives every choice from the child
        stream ``episode{i}``.
    stacks:
        Which stacks to soak (subset of :data:`STACKS`).
    depots:
        Relay chain length (intermediate depots) for socket episodes.
    min_size, max_size:
        Payload size bounds in bytes.
    max_faults:
        Upper bound on injected rules per episode (at least one is
        always injected — a chaos run without faults soaks nothing).
    max_retries:
        Per-sublink retry budget; kept above the per-rule firing count
        so most episodes recover, while stacked rules can still
        exhaust it (both outcomes are valid, only *unclean* failures
        are violations).
    topology:
        ``"relay"`` soaks linear chains (the original battery);
        ``"multicast"`` soaks randomized staging trees — socket
        episodes drive :class:`~repro.lsl.multicast_failover.
        MulticastFailoverSender` under a random fault plan and random
        striping, simulator episodes kill a random ancestor depot
        mid-staging and check the orphan resumed from its watermark
        while earlier deliveries stayed untouched.
    tree_nodes:
        Node count of each randomized multicast tree (root included).
    """

    episodes: int = 5
    seed: int = 0
    stacks: tuple[str, ...] = STACKS
    depots: int = 2
    min_size: int = 64 << 10
    max_size: int = 1 << 20
    max_faults: int = 3
    max_retries: int = 4
    topology: str = "relay"
    tree_nodes: int = 4

    def __post_init__(self) -> None:
        check_positive_int("episodes", self.episodes)
        check_positive_int("depots", self.depots)
        check_positive_int("min_size", self.min_size)
        check_positive_int("max_size", self.max_size)
        check_positive_int("max_faults", self.max_faults)
        check_positive("max_retries", self.max_retries)
        if self.max_size < self.min_size:
            raise ValueError(
                f"max_size={self.max_size} < min_size={self.min_size}"
            )
        unknown = set(self.stacks) - set(STACKS)
        if unknown:
            raise ValueError(f"unknown stack(s) {sorted(unknown)}")
        if not self.stacks:
            raise ValueError("at least one stack is required")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"choose from {TOPOLOGIES}"
            )
        if self.tree_nodes < 2:
            raise ValueError(
                f"tree_nodes={self.tree_nodes} needs at least a root "
                f"and one branch"
            )


@dataclass
class EpisodeResult:
    """One episode's outcome and integrity verdict.

    ``violations`` is the point of the harness: empty means every
    invariant held — *including* for episodes that (cleanly) failed.
    """

    index: int
    stack: str
    size: int
    faults: list[str]
    delivered: bool
    error: str = ""
    attempts: int = 0
    retransmitted: float = 0.0
    duration_s: float = 0.0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ChaosReport:
    """Aggregate outcome of :func:`run_chaos`."""

    config: ChaosConfig
    episodes: list[EpisodeResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.episodes)

    @property
    def violations(self) -> list[str]:
        return [
            f"episode {e.index} ({e.stack}, seed={self.config.seed}): {v}"
            for e in self.episodes
            for v in e.violations
        ]

    def summary(self) -> str:
        """One line per episode plus the verdict, for the CLI."""
        lines = []
        for e in self.episodes:
            outcome = "delivered" if e.delivered else f"failed ({e.error})"
            verdict = "ok" if e.ok else "VIOLATED: " + "; ".join(e.violations)
            lines.append(
                f"[{e.stack} #{e.index}] {e.size} B, "
                f"faults=[{', '.join(e.faults) or 'none'}], {outcome}, "
                f"attempts={e.attempts}, {verdict}"
            )
        total = len(self.episodes)
        bad = sum(1 for e in self.episodes if not e.ok)
        lines.append(
            f"{total} episode(s), {total - bad} clean, {bad} violated "
            f"(seed={self.config.seed})"
        )
        return "\n".join(lines)


def _leaked_lsl_threads() -> list[str]:
    return sorted(
        t.name for t in threading.enumerate() if t.name.startswith("lsl:")
    )


def _make_plan(
    rng: RngStream, sites: list[str], config: ChaosConfig
) -> tuple[FaultPlan, list[str]]:
    """A randomized fault schedule over ``sites`` plus its description."""
    n_rules = int(rng.integers(1, config.max_faults + 1))
    rules: list[FaultRule] = []
    labels: list[str] = []
    for _ in range(n_rules):
        site = str(rng.choice(sites))
        kind = _KINDS[int(rng.integers(0, len(_KINDS)))]
        if kind is FaultKind.REFUSE and site == "source":
            kind = FaultKind.CORRUPT_HEADER  # sources do not accept
        after = int(rng.integers(0, config.min_size))
        times = int(rng.integers(1, 3))
        delay = float(rng.uniform(0.005, 0.03))
        rules.append(
            FaultRule(
                site=site,
                kind=kind,
                after_bytes=after,
                delay=delay,
                times=times,
            )
        )
        labels.append(f"{kind.value}@{site}x{times}")
    return FaultPlan(rules), labels


def _payload(rng: RngStream, size: int) -> bytes:
    return rng.generator.bytes(size)


def _socket_episode(
    index: int, rng: RngStream, config: ChaosConfig
) -> EpisodeResult:
    """One randomized transfer over a real loopback relay chain."""
    from repro.lsl.header import SessionHeader, new_session_id
    from repro.lsl.options import LooseSourceRoute
    from repro.lsl.socket_transport import DepotServer, SinkServer, send_session

    size = int(rng.integers(config.min_size, config.max_size + 1))
    depot_names = [f"chaos-d{i}" for i in range(config.depots)]
    sites = ["source", *depot_names, "chaos-sink"]
    plan, labels = _make_plan(rng, sites, config)
    policy = RetryPolicy(
        max_retries=config.max_retries,
        base_delay=0.01,
        multiplier=1.5,
        max_delay=0.05,
        jitter=0.25,
        io_timeout=5.0,
        connect_timeout=5.0,
        seed=config.seed + index,
    )
    result = EpisodeResult(
        index=index, stack="socket", size=size, faults=labels, delivered=False
    )
    payload = _payload(rng.child("payload"), size)
    t0 = time.monotonic()
    sink = SinkServer(name="chaos-sink", fault_plan=plan)
    depots = [
        DepotServer(name=name, fault_plan=plan, retry=policy)
        for name in depot_names
    ]
    try:
        header = SessionHeader(
            session_id=new_session_id(),
            src_ip="127.0.0.1",
            dst_ip="127.0.0.1",
            src_port=0,
            dst_port=sink.port,
            options=(
                LooseSourceRoute(
                    hops=tuple(d.address for d in depots[1:])
                ),
            )
            if len(depots) > 1
            else (),
        )
        try:
            report = send_session(
                payload,
                header,
                depots[0].address,
                chunk_size=16 << 10,
                retry=policy,
                fault_plan=plan,
            )
        except RetryExhausted as exc:
            result.error = f"RetryExhausted: {exc}"
        except Exception as exc:  # invariant: only clean failures
            result.error = f"{type(exc).__name__}: {exc}"
            result.violations.append(
                f"unclean failure {type(exc).__name__}: {exc}"
            )
        else:
            result.attempts = report.attempts
            result.retransmitted = report.retransmitted
            got = sink.wait_for(header.hex_id, timeout=30.0)
            result.delivered = True
            if got != payload:
                result.violations.append(
                    f"payload mismatch: sent {size} bytes, "
                    f"delivered {len(got)}"
                )
            if report.attempts > policy.max_retries + 1:
                result.violations.append(
                    f"attempts {report.attempts} exceed budget "
                    f"{policy.max_retries + 1}"
                )
            if report.retransmitted > size * report.attempts:
                result.violations.append(
                    f"retransmitted {report.retransmitted} exceeds "
                    f"{report.attempts} attempt(s) x {size} bytes"
                )
    finally:
        for server in (*depots, sink):
            server.kill()
    result.duration_s = time.monotonic() - t0
    leaked = _leaked_lsl_threads()
    if leaked:
        result.violations.append(f"leaked threads: {', '.join(leaked)}")
    return result


def _simulator_episode(
    index: int, rng: RngStream, config: ChaosConfig
) -> EpisodeResult:
    """One randomized faulted transfer through the fluid model."""
    from repro.net.simulator import NetworkSimulator, SublinkFault
    from repro.net.topology import PathSpec

    size = int(rng.integers(config.min_size, config.max_size + 1))
    n_sublinks = config.depots + 1
    paths = [
        PathSpec(
            rtt=float(rng.uniform(0.01, 0.08)),
            bandwidth=float(rng.uniform(2e6, 2e7)),
        )
        for _ in range(n_sublinks)
    ]
    n_faults = int(rng.integers(1, config.max_faults + 1))
    faults = [
        SublinkFault(
            sublink=int(rng.integers(0, n_sublinks)),
            after_bytes=float(rng.integers(0, size)),
            times=int(rng.integers(1, 3)),
        )
        for _ in range(n_faults)
    ]
    labels = [
        f"cut@sublink{f.sublink}x{f.times}@{int(f.after_bytes)}B"
        for f in faults
    ]
    policy = RetryPolicy(
        max_retries=config.max_retries,
        base_delay=0.05,
        multiplier=2.0,
        max_delay=1.0,
        jitter=0.25,
        seed=config.seed + index,
    )
    result = EpisodeResult(
        index=index, stack="simulator", size=size, faults=labels,
        delivered=False,
    )
    t0 = time.monotonic()
    sim = NetworkSimulator(seed=config.seed + index)
    outcome = sim.run_relay_with_faults(
        paths, size, faults, retry=policy, max_time=7200.0
    )
    result.duration_s = time.monotonic() - t0
    result.attempts = outcome.retries + 1
    result.retransmitted = outcome.retransmitted_bytes
    result.delivered = outcome.completed
    if not outcome.completed:
        result.error = "retry budget exhausted"
    budget = sum(f.times for f in faults)
    if outcome.retries > budget:
        result.violations.append(
            f"{outcome.retries} retries exceed the {budget} injected cuts"
        )
    if outcome.retransmitted_bytes > size * (outcome.retries + 1):
        result.violations.append(
            f"retransmitted {outcome.retransmitted_bytes:.0f} bytes exceed "
            f"{outcome.retries + 1} attempt(s) x {size}"
        )
    if outcome.completed and outcome.duration < outcome.clean_duration:
        result.violations.append(
            f"faulted duration {outcome.duration:.3f}s beat the clean run "
            f"{outcome.clean_duration:.3f}s"
        )
    return result


def _random_parents(rng: RngStream, n_nodes: int) -> list[int]:
    """A random parents-before-children tree shape (index 0 = root)."""
    return [-1] + [int(rng.integers(0, i)) for i in range(1, n_nodes)]


def _multicast_socket_episode(
    index: int, rng: RngStream, config: ChaosConfig
) -> EpisodeResult:
    """One randomized staging tree on real sockets, under a fault plan.

    A :class:`~repro.lsl.multicast_failover.MulticastFailoverSender`
    replicates a random payload down a random ``tree_nodes``-node tree
    (random striping) while a randomized fault schedule fires at the
    source and the depots.  The relay invariants carry over per branch,
    plus the multicast-specific one: *every* tree node must end up
    holding a byte-exact parked copy under the shared session id.
    """
    from repro.lsl.failover import NoRouteLeft
    from repro.lsl.multicast import StagingTree
    from repro.lsl.multicast_failover import MulticastFailoverSender
    from repro.lsl.socket_transport import DepotServer

    size = int(rng.integers(config.min_size, config.max_size + 1))
    parents = _random_parents(rng.child("tree"), config.tree_nodes)
    stripes = int(rng.choice((1, 2)))
    names = [f"mc-n{i}" for i in range(config.tree_nodes)]
    plan, labels = _make_plan(rng, ["source", *names], config)
    labels.append(f"tree={','.join(map(str, parents))}x{stripes}stripe")
    policy = RetryPolicy(
        max_retries=config.max_retries,
        base_delay=0.01,
        multiplier=1.5,
        max_delay=0.05,
        jitter=0.25,
        io_timeout=5.0,
        connect_timeout=5.0,
        seed=config.seed + index,
    )
    result = EpisodeResult(
        index=index, stack="socket", size=size, faults=labels,
        delivered=False,
    )
    payload = _payload(rng.child("payload"), size)
    t0 = time.monotonic()
    servers = [
        DepotServer(name=name, fault_plan=plan, retry=policy)
        for name in names
    ]
    max_failovers = 2
    try:
        tree = StagingTree(
            nodes=tuple(
                (parents[i], "127.0.0.1", servers[i].port)
                for i in range(config.tree_nodes)
            )
        )
        sender = MulticastFailoverSender(
            tree,
            retry=policy,
            max_failovers=max_failovers,
            stripes=stripes,
            fault_plan=plan,
        )
        try:
            staged = sender.stage(payload, chunk_size=16 << 10)
        except (NoRouteLeft, RetryExhausted) as exc:
            result.error = f"{type(exc).__name__}: {exc}"
        except Exception as exc:  # invariant: only clean failures
            result.error = f"{type(exc).__name__}: {exc}"
            result.violations.append(
                f"unclean failure {type(exc).__name__}: {exc}"
            )
        else:
            result.delivered = True
            result.attempts = sum(
                r.attempts for r in staged.delivered.values()
            )
            result.retransmitted = sum(
                r.retransmitted for r in staged.delivered.values()
            )
            # a branch's winning chain stays within one send_session's
            # connect budget per stripe
            per_branch = stripes * (config.max_retries + 1)
            for addr, sent in staged.delivered.items():
                if sent.attempts > per_branch:
                    result.violations.append(
                        f"branch {addr} used {sent.attempts} connects, "
                        f"budget {per_branch}"
                    )
                if sent.retransmitted > size * sent.attempts:
                    result.violations.append(
                        f"branch {addr} retransmitted "
                        f"{sent.retransmitted} bytes over "
                        f"{sent.attempts} attempt(s) of {size}"
                    )
            for i, server in enumerate(servers):
                got = server.held.get(staged.session)
                if got != payload:
                    result.violations.append(
                        f"node {names[i]} holds "
                        f"{'nothing' if got is None else f'{len(got)} bytes'}"
                        f", expected {size} byte-exact"
                    )
    finally:
        for server in servers:
            server.kill()
    result.duration_s = time.monotonic() - t0
    leaked = _leaked_lsl_threads()
    if leaked:
        result.violations.append(f"leaked threads: {', '.join(leaked)}")
    return result


def _multicast_simulator_episode(
    index: int, rng: RngStream, config: ChaosConfig
) -> EpisodeResult:
    """One randomized staging tree in the fluid model, with a depot kill.

    Runs the same seeded tree twice through
    :meth:`~repro.net.simulator.NetworkSimulator.run_staging_with_failover`
    — once clean, once with a random ancestor depot dying mid-way through
    a random descendant's delivery — and checks that the orphan resumed
    from at least its staged watermark, that every node delivered *before*
    the kill has an identical timeline in both runs (sibling isolation),
    and that the recovery is visible as exactly one failover.
    """
    from repro.net.simulator import NetworkSimulator
    from repro.net.topology import PathSpec

    size = int(rng.integers(config.min_size, config.max_size + 1))
    n = config.tree_nodes
    parents = _random_parents(rng.child("tree"), n)
    stripes = int(rng.choice((1, 2)))
    names = [f"mc-n{i}" for i in range(n)]
    edge_rng = rng.child("edges")
    edge_paths = {
        (upstream, node): PathSpec(
            rtt=float(edge_rng.uniform(0.01, 0.08)),
            bandwidth=float(edge_rng.uniform(2e6, 2e7)),
        )
        for node in names
        for upstream in ["source", *names]
        if upstream != node
    }
    orphan_idx = int(rng.integers(1, n))
    ancestors = []
    j = parents[orphan_idx]
    while j >= 0:
        ancestors.append(j)
        j = parents[j]
    fail_idx = int(ancestors[int(rng.integers(0, len(ancestors)))])
    fail_after = float(rng.uniform(0.05, 0.4)) * size
    labels = [
        f"tree={','.join(map(str, parents))}x{stripes}stripe",
        f"kill@{names[fail_idx]}during{names[orphan_idx]}"
        f"@{int(fail_after)}B",
    ]
    result = EpisodeResult(
        index=index, stack="simulator", size=size, faults=labels,
        delivered=False,
    )
    t0 = time.monotonic()
    clean = NetworkSimulator(seed=config.seed + index).run_staging_with_failover(
        names, parents, edge_paths, size, stripes=stripes,
    )
    killed = NetworkSimulator(seed=config.seed + index).run_staging_with_failover(
        names, parents, edge_paths, size,
        fail_node=names[fail_idx],
        fail_during=names[orphan_idx],
        fail_after_bytes=fail_after,
        stripes=stripes,
    )
    result.duration_s = time.monotonic() - t0
    result.delivered = True
    result.attempts = 1 + killed.failovers
    if killed.failovers != 1:
        result.violations.append(
            f"expected exactly 1 failover, saw {killed.failovers}"
        )
    if killed.orphan != names[orphan_idx]:
        result.violations.append(
            f"orphan {killed.orphan!r} is not the interrupted branch "
            f"{names[orphan_idx]!r}"
        )
    if killed.resumed_from == names[fail_idx]:
        result.violations.append(
            f"orphan resumed from the dead depot {killed.resumed_from!r}"
        )
    if not (fail_after <= killed.staged_at_failover <= size):
        result.violations.append(
            f"staged watermark {killed.staged_at_failover:.0f} outside "
            f"[{fail_after:.0f}, {size}]"
        )
    if killed.handoff_time >= killed.node_times[names[orphan_idx]]:
        result.violations.append(
            "orphan completion does not follow the handoff"
        )
    for name in names[:orphan_idx]:
        if abs(killed.node_times[name] - clean.node_times[name]) > 1e-9:
            result.violations.append(
                f"pre-kill delivery to {name} perturbed: "
                f"{killed.node_times[name]:.6f}s vs clean "
                f"{clean.node_times[name]:.6f}s"
            )
    times = [killed.node_times[name] for name in names]
    if any(b <= a for a, b in zip(times, times[1:])):
        result.violations.append(
            f"delivery times not strictly increasing: {times}"
        )
    return result


#: Episode runners per (topology, stack).
_RUNNERS = {
    "relay": {
        "socket": _socket_episode,
        "simulator": _simulator_episode,
    },
    "multicast": {
        "socket": _multicast_socket_episode,
        "simulator": _multicast_simulator_episode,
    },
}


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """Run the soak described by ``config`` and judge every episode."""
    config = config or ChaosConfig()
    root = RngStream(config.seed, "chaos")
    report = ChaosReport(config=config)
    runners = _RUNNERS[config.topology]
    index = 0
    for episode in range(config.episodes):
        for stack in config.stacks:
            rng = root.child(f"episode{episode}/{stack}")
            report.episodes.append(runners[stack](index, rng, config))
            index += 1
    return report

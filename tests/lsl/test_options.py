"""TLV option codec tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lsl.options import (
    LooseSourceRoute,
    MulticastTreeOption,
    PaddingOption,
    decode_options,
    encode_options,
)


class TestPadding:
    def test_roundtrip(self):
        opts = decode_options(encode_options([PaddingOption(5)]))
        assert opts == [PaddingOption(5)]

    def test_zero_length(self):
        opts = decode_options(encode_options([PaddingOption(0)]))
        assert opts == [PaddingOption(0)]

    def test_nonzero_padding_rejected(self):
        wire = bytearray(encode_options([PaddingOption(3)]))
        wire[-1] = 0xFF
        with pytest.raises(ValueError, match="zero"):
            decode_options(bytes(wire))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            PaddingOption(-1)


class TestLooseSourceRoute:
    def test_roundtrip(self):
        lsrr = LooseSourceRoute(
            hops=(("10.0.0.1", 9000), ("10.0.0.2", 9001))
        )
        out = decode_options(encode_options([lsrr]))
        assert out == [lsrr]

    def test_empty_route(self):
        lsrr = LooseSourceRoute(hops=())
        assert decode_options(encode_options([lsrr])) == [lsrr]

    def test_advance_pops_front(self):
        lsrr = LooseSourceRoute(hops=(("1.1.1.1", 1), ("2.2.2.2", 2)))
        hop, rest = lsrr.advance()
        assert hop == ("1.1.1.1", 1)
        assert rest.hops == (("2.2.2.2", 2),)

    def test_advance_exhausted(self):
        lsrr = LooseSourceRoute(hops=())
        hop, rest = lsrr.advance()
        assert hop is None
        assert rest is lsrr

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            LooseSourceRoute(hops=(("1.1.1.1", 99999),))

    def test_bad_ip_rejected(self):
        with pytest.raises(Exception):
            LooseSourceRoute(hops=(("nope", 1),))

    def test_misaligned_value_rejected(self):
        wire = bytearray(
            encode_options([LooseSourceRoute(hops=(("1.1.1.1", 1),))])
        )
        # shorten the value by one byte, fix up the length field
        wire = wire[:-1]
        wire[1:3] = (5).to_bytes(2, "big")
        with pytest.raises(ValueError, match="multiple"):
            decode_options(bytes(wire))

    @given(
        st.lists(
            st.tuples(
                st.lists(
                    st.integers(min_value=0, max_value=255),
                    min_size=4,
                    max_size=4,
                ),
                st.integers(min_value=0, max_value=0xFFFF),
            ),
            max_size=10,
        )
    )
    def test_roundtrip_property(self, raw_hops):
        hops = tuple(
            (".".join(map(str, octets)), port) for octets, port in raw_hops
        )
        lsrr = LooseSourceRoute(hops=hops)
        assert decode_options(encode_options([lsrr])) == [lsrr]


class TestMulticastTree:
    def tree(self):
        return MulticastTreeOption(
            nodes=(
                (-1, "10.0.0.1", 1000),
                (0, "10.0.0.2", 1001),
                (0, "10.0.0.3", 1002),
                (1, "10.0.0.4", 1003),
            )
        )

    def test_roundtrip(self):
        t = self.tree()
        assert decode_options(encode_options([t])) == [t]

    def test_children_of(self):
        t = self.tree()
        assert t.children_of(0) == [1, 2]
        assert t.children_of(1) == [3]
        assert t.children_of(3) == []

    def test_root_must_come_first(self):
        with pytest.raises(ValueError):
            MulticastTreeOption(nodes=((0, "1.1.1.1", 1),))

    def test_second_root_rejected(self):
        with pytest.raises(ValueError):
            MulticastTreeOption(
                nodes=((-1, "1.1.1.1", 1), (-1, "2.2.2.2", 2))
            )

    def test_forward_reference_rejected(self):
        with pytest.raises(ValueError):
            MulticastTreeOption(
                nodes=((-1, "1.1.1.1", 1), (2, "2.2.2.2", 2), (0, "3.3.3.3", 3))
            )


class TestMultipleOptions:
    def test_order_preserved(self):
        opts = [
            PaddingOption(2),
            LooseSourceRoute(hops=(("9.9.9.9", 9),)),
            PaddingOption(0),
        ]
        assert decode_options(encode_options(opts)) == opts

    def test_unknown_kind_rejected(self):
        wire = bytes([200, 0, 0])  # kind 200, zero length
        with pytest.raises(ValueError, match="unknown"):
            decode_options(wire)

    def test_truncated_tl_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_options(b"\x01")

    def test_truncated_value_rejected(self):
        wire = bytes([0, 0, 10]) + b"\x00" * 3  # claims 10, has 3
        with pytest.raises(ValueError, match="truncated"):
            decode_options(wire)

    def test_empty_wire_is_no_options(self):
        assert decode_options(b"") == []


class TestResumeOffset:
    def test_roundtrip(self):
        from repro.lsl.options import ResumeOffset

        opt = ResumeOffset(total=1 << 33, offset=12345)
        assert decode_options(encode_options([opt])) == [opt]

    def test_default_offset_zero(self):
        from repro.lsl.options import ResumeOffset

        assert ResumeOffset(total=100).offset == 0

    def test_offset_beyond_total_rejected(self):
        from repro.lsl.options import ResumeOffset

        with pytest.raises(ValueError, match="beyond"):
            ResumeOffset(total=10, offset=11)

    def test_out_of_range_rejected(self):
        from repro.lsl.options import ResumeOffset

        with pytest.raises(ValueError, match="64-bit"):
            ResumeOffset(total=-1)
        with pytest.raises(ValueError, match="64-bit"):
            ResumeOffset(total=1 << 64)

    def test_truncated_value_rejected(self):
        from repro.lsl.options import ResumeOffset

        wire = bytearray(encode_options([ResumeOffset(total=5)]))
        wire = wire[:-8]
        wire[1:3] = (8).to_bytes(2, "big")
        with pytest.raises(ValueError):
            decode_options(bytes(wire))

    def test_rides_alongside_lsrr(self):
        from repro.lsl.options import ResumeOffset

        opts = [
            LooseSourceRoute(hops=(("10.0.0.1", 9000),)),
            ResumeOffset(total=999, offset=42),
        ]
        assert decode_options(encode_options(opts)) == opts


class TestStripeOption:
    def test_roundtrip(self):
        from repro.lsl.options import StripeOption

        opt = StripeOption(index=3, count=8, block=64 << 10)
        assert decode_options(encode_options([opt])) == [opt]

    def test_default_block(self):
        from repro.lsl.options import StripeOption

        assert StripeOption(index=0, count=2).block == 16 << 10

    def test_index_outside_count_rejected(self):
        from repro.lsl.options import StripeOption

        with pytest.raises(ValueError, match="outside"):
            StripeOption(index=2, count=2)
        with pytest.raises(ValueError, match="outside"):
            StripeOption(index=-1, count=2)

    def test_zero_count_rejected(self):
        from repro.lsl.options import StripeOption

        with pytest.raises(ValueError, match="count"):
            StripeOption(index=0, count=0)

    def test_zero_block_rejected(self):
        from repro.lsl.options import StripeOption

        with pytest.raises(ValueError, match="block"):
            StripeOption(index=0, count=2, block=0)

    def test_truncated_value_rejected(self):
        from repro.lsl.options import StripeOption

        wire = bytearray(encode_options([StripeOption(index=1, count=4)]))
        wire[1:3] = (4).to_bytes(2, "big")  # claim a short value
        with pytest.raises(ValueError, match="stripe option"):
            decode_options(bytes(wire[: 3 + 4]))

    @given(
        index=st.integers(min_value=0, max_value=0xFFFE),
        extra=st.integers(min_value=1, max_value=0xFF),
        block=st.integers(min_value=1, max_value=0xFFFF_FFFF),
    )
    def test_roundtrip_property(self, index, extra, block):
        from repro.lsl.options import StripeOption

        opt = StripeOption(index=index, count=index + extra, block=block)
        assert decode_options(encode_options([opt])) == [opt]


class TestMulticastWireOptionsUnderCorruption:
    """The full multicast option set survives encode/decode intact, and a
    corrupted header is rejected loudly rather than misparsed."""

    def full_option_set(self):
        from repro.lsl.options import ResumeOffset, StripeOption

        return [
            MulticastTreeOption(
                nodes=(
                    (-1, "10.0.0.1", 9000),
                    (0, "10.0.0.2", 9001),
                    (1, "10.0.0.3", 9002),
                )
            ),
            LooseSourceRoute(hops=(("10.0.0.1", 9000), ("10.0.0.2", 9001))),
            ResumeOffset(total=1 << 20),
            StripeOption(index=1, count=4, block=32 << 10),
        ]

    def test_full_set_roundtrips_in_a_header(self):
        from repro.lsl.header import SessionHeader, SessionType, new_session_id

        header = SessionHeader(
            session_id=new_session_id(),
            src_ip="127.0.0.1",
            dst_ip="10.0.0.3",
            src_port=0,
            dst_port=9002,
            session_type=SessionType.MULTICAST,
            options=tuple(self.full_option_set()),
        )
        restored, consumed = SessionHeader.decode(header.encode())
        assert consumed == len(header.encode())
        assert restored.options == header.options
        assert restored.session_type == SessionType.MULTICAST

    def test_faultplan_corruption_is_rejected_not_misparsed(self):
        from repro.lsl.faults import FaultKind, FaultPlan, FaultRule
        from repro.lsl.header import SessionHeader, SessionType, new_session_id

        header = SessionHeader(
            session_id=new_session_id(),
            src_ip="127.0.0.1",
            dst_ip="10.0.0.3",
            src_port=0,
            dst_port=9002,
            session_type=SessionType.MULTICAST,
            options=tuple(self.full_option_set()),
        )
        plan = FaultPlan(
            [FaultRule(site="source", kind=FaultKind.CORRUPT_HEADER)]
        )
        corrupted = plan.corrupt_header("source", header.encode())
        assert corrupted != header.encode()
        with pytest.raises(ValueError):
            SessionHeader.decode(corrupted)
        # the rule is consumed: the retry's header goes out clean
        clean = plan.corrupt_header("source", header.encode())
        assert SessionHeader.decode(clean)[0].options == header.options

    def test_every_single_byte_flip_never_misparses_options(self):
        # flip each option byte in turn: decode must either reject or
        # reproduce a valid option list -- never crash some other way
        opts = self.full_option_set()
        wire = bytearray(encode_options(opts))
        for i in range(len(wire)):
            mutated = bytearray(wire)
            mutated[i] ^= 0xFF
            try:
                decode_options(bytes(mutated))
            except ValueError:
                continue

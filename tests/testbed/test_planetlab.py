"""Synthetic PlanetLab generator tests."""

import pytest

from repro.net.topology import PLANETLAB_SOCKET_BUFFER
from repro.testbed.planetlab import PlanetLabConfig, generate_planetlab
from repro.testbed.sites import site_of_host


@pytest.fixture(scope="module")
def testbed():
    return generate_planetlab(seed=42)


class TestConfig:
    def test_defaults_valid(self):
        PlanetLabConfig()

    def test_bad_host_range_rejected(self):
        with pytest.raises(ValueError):
            PlanetLabConfig(min_hosts_per_site=3, max_hosts_per_site=1)

    def test_bad_loss_range_rejected(self):
        with pytest.raises(ValueError):
            PlanetLabConfig(wan_loss_low=0.1, wan_loss_high=0.01)


class TestScale:
    def test_host_count_near_papers_142(self, testbed):
        # 60 sites x U(1..3) hosts: expect roughly 120 +/- 40
        assert 80 <= len(testbed.hosts) <= 180

    def test_site_count(self, testbed):
        assert len(set(testbed.site_of.values())) == 60

    def test_hosts_per_site_in_range(self, testbed):
        for site in set(testbed.site_of.values()):
            assert 1 <= len(testbed.hosts_at(site)) <= 3


class TestStructure:
    def test_every_host_named_by_site(self, testbed):
        for host in testbed.hosts:
            assert site_of_host(host) == testbed.site_of[host]

    def test_all_hosts_have_planetlab_buffers(self, testbed):
        for host in testbed.hosts:
            assert testbed.topology.socket_buffer(host) == PLANETLAB_SOCKET_BUFFER

    def test_gateways_fully_meshed(self, testbed):
        sites = sorted(set(testbed.site_of.values()))
        # spot-check a handful of pairs
        for a, b in zip(sites[:5], sites[5:10]):
            assert (a, b) in testbed.gateway_routes

    def test_all_host_pairs_have_specs(self, testbed):
        hosts = testbed.hosts[:10]
        for a in hosts:
            for b in hosts:
                if a != b:
                    spec = testbed.sublink_spec(a, b)
                    assert spec.rtt > 0 and spec.bandwidth > 0

    def test_every_host_has_forward_cap(self, testbed):
        for host in testbed.hosts:
            assert testbed.forward_cap[host] > 0

    def test_most_hosts_rate_capped(self, testbed):
        """PlanetLab's default 10 Mbit cap covers ~85 % of nodes."""
        frac = len(testbed.rate_cap) / len(testbed.hosts)
        assert 0.7 <= frac <= 0.95

    def test_geography_orders_rtt(self, testbed):
        """A cross-country pair must see a longer RTT than a same-coast
        pair."""
        def find(domain):
            return testbed.hosts_at(domain)[0]

        # catalog guarantees these four are sampled? not necessarily;
        # instead compare the min and max over sampled site pairs
        sites = sorted(set(testbed.site_of.values()))
        rtts = []
        for a, b in zip(sites, sites[1:]):
            rtts.append(
                testbed.sublink_spec(
                    testbed.hosts_at(a)[0], testbed.hosts_at(b)[0]
                ).rtt
            )
        assert max(rtts) > 2 * min(rtts)


class TestDeterminism:
    def test_same_seed_same_testbed(self):
        a = generate_planetlab(seed=11)
        b = generate_planetlab(seed=11)
        assert a.hosts == b.hosts
        assert a.rate_cap == b.rate_cap
        s1 = a.sublink_spec(a.hosts[0], a.hosts[-1])
        s2 = b.sublink_spec(b.hosts[0], b.hosts[-1])
        assert s1 == s2

    def test_different_seed_different_testbed(self):
        a = generate_planetlab(seed=11)
        b = generate_planetlab(seed=12)
        assert a.hosts != b.hosts or a.rate_cap != b.rate_cap

"""Sequence-number traces and their aggregation.

The paper's Figures 4 and 5 plot the highest *acknowledged* sequence number
against time, averaged over 10 iterations, for each sublink and for the
direct connection.  :class:`SeqTrace` is the container; the helpers
resample traces onto a common grid and average them, mirroring the paper's
normalisation ("we have normalized the sequence number ... so that the
relative growth of the TCP window over the various iterations could be
averaged").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SeqTrace:
    """Acknowledged-bytes-versus-time series for one connection.

    Attributes
    ----------
    times:
        Sample instants in seconds, non-decreasing.
    acked:
        Cumulative acknowledged bytes at each instant, non-decreasing.
    name:
        Label ("UCSB-Denver", "UCSB-UIUC direct", ...).
    """

    times: np.ndarray
    acked: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.acked = np.asarray(self.acked, dtype=float)
        if self.times.shape != self.acked.shape:
            raise ValueError("times and acked must have identical shapes")
        if self.times.ndim != 1:
            raise ValueError("traces are one-dimensional")
        if len(self.times) and np.any(np.diff(self.times) < 0):
            raise ValueError("times must be non-decreasing")

    @classmethod
    def from_flow(cls, flow, name: str = "") -> "SeqTrace":
        """Capture the recorded trace of a :class:`FluidTcpFlow`."""
        return cls(
            times=np.asarray(flow.trace_times, dtype=float),
            acked=np.asarray(flow.trace_acked, dtype=float),
            name=name or flow.path.name,
        )

    @property
    def duration(self) -> float:
        """Span of the trace in seconds (0 for an empty trace)."""
        if len(self.times) == 0:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def final_acked(self) -> float:
        """Last acknowledged byte count (0 for an empty trace)."""
        return float(self.acked[-1]) if len(self.acked) else 0.0

    @property
    def mean_rate(self) -> float:
        """Average acked-byte rate over the whole trace, in bytes/sec.

        Returns 0.0 for empty, single-sample and zero-duration traces —
        a stalled run contributes a zero rate instead of a ZeroDivision
        or a NaN poisoning downstream averages.
        """
        span = self.duration
        if span <= 0.0:
            return 0.0
        return (self.final_acked - float(self.acked[0])) / span

    def value_at(self, t: float) -> float:
        """Acknowledged bytes at time ``t`` (linear interpolation)."""
        if len(self.times) == 0:
            return 0.0
        return float(np.interp(t, self.times, self.acked))

    def slope(self, t0: float, t1: float) -> float:
        """Average acked-byte growth rate (bytes/sec) over ``[t0, t1]``.

        This is the quantity the paper eyeballs to identify the bottleneck
        sublink ("the slopes of subflow 1 and subflow 2 are very close
        together").
        """
        if t1 <= t0:
            raise ValueError("t1 must exceed t0")
        return (self.value_at(t1) - self.value_at(t0)) / (t1 - t0)

    def time_to_reach(self, nbytes: float) -> float:
        """First time at which ``acked >= nbytes`` (inf if never)."""
        idx = np.searchsorted(self.acked, nbytes, side="left")
        if idx >= len(self.acked):
            return float("inf")
        if idx == 0:
            return float(self.times[0])
        # interpolate within the straddling segment
        a0, a1 = self.acked[idx - 1], self.acked[idx]
        t0, t1 = self.times[idx - 1], self.times[idx]
        if a1 == a0:
            return float(t1)
        frac = (nbytes - a0) / (a1 - a0)
        return float(t0 + frac * (t1 - t0))


def resample_trace(trace: SeqTrace, grid: np.ndarray) -> SeqTrace:
    """Resample a trace onto an explicit time grid via interpolation.

    Times past the end of the trace hold the final value (the transfer has
    finished; the curve is flat).
    """
    grid = np.asarray(grid, dtype=float)
    if len(trace.times) == 0:
        return SeqTrace(times=grid, acked=np.zeros_like(grid), name=trace.name)
    values = np.interp(grid, trace.times, trace.acked)
    return SeqTrace(times=grid, acked=values, name=trace.name)


def average_traces(traces: list[SeqTrace], n_points: int = 400) -> SeqTrace:
    """Average several iterations of the same connection onto one curve.

    A common grid spans the longest iteration; each trace is resampled and
    the acked values are averaged point-wise — the paper's procedure for
    Figures 4 and 5.
    """
    if not traces:
        raise ValueError("need at least one trace")
    # default=0.0 keeps an all-empty batch (every iteration stalled
    # before the first sample) from raising on the empty max()
    t_max = max((t.times[-1] for t in traces if len(t.times)), default=0.0)
    grid = np.linspace(0.0, float(t_max), n_points)
    stacked = np.vstack([resample_trace(t, grid).acked for t in traces])
    return SeqTrace(
        times=grid,
        acked=stacked.mean(axis=0),
        name=traces[0].name,
    )

"""Determinism rules: experiments must be exactly repeatable.

RPR004
    Module-level ``random.*`` / ``numpy.random.*`` calls draw from
    hidden global state, so adding one call anywhere reshuffles every
    experiment after it.  The sanctioned path is
    :class:`repro.util.rng.RngStream` (explicitly seeded, named
    streams); the seeded *constructors* numpy exposes
    (``default_rng``, ``SeedSequence``, ``Generator``) are exempt
    because they are exactly how such streams are built.
RPR005
    The ``net/`` simulator runs on virtual time — results must not
    depend on the wall clock, and a ``time.sleep`` there burns real
    seconds to simulate zero.  Scoped to files under a ``net``
    directory.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import ImportMap
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.walker import ModuleSource

#: Seeded-stream constructors: the sanctioned way to build generators.
_SEEDED_CONSTRUCTORS = {"default_rng", "SeedSequence", "Generator"}

#: Wall-clock reads and real-time waits, fully qualified.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}


@register
class UnseededRandomRule(Rule):
    """RPR004: no draws from the hidden module-level random state."""

    id = "RPR004"
    name = "unseeded-random"
    rationale = (
        "module-level random draws use hidden global state; one new "
        "call reshuffles every later draw — use repro.util.rng.RngStream"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return not module.is_test_code

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node)
            if resolved is None:
                continue
            if resolved.startswith("random.") or resolved.startswith(
                "numpy.random."
            ):
                fn = resolved.rsplit(".", 1)[1]
                if fn in _SEEDED_CONSTRUCTORS:
                    continue
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"unseeded module-level draw `{resolved}()`; "
                        "use a seeded repro.util.rng.RngStream"
                    ),
                    symbol=fn,
                )


@register
class WallClockRule(Rule):
    """RPR005: simulator code must not read or wait on the wall clock."""

    id = "RPR005"
    name = "wall-clock-in-simulator"
    rationale = (
        "simulator code runs on virtual time; wall-clock reads make "
        "results machine-dependent and sleeps burn real seconds"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return "net" in module.parts and not module.is_test_code

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node)
            if resolved in _WALL_CLOCK:
                yield Finding(
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"wall-clock call `{resolved}()` in simulator "
                        "code; the simulator must run on virtual time"
                    ),
                    symbol=resolved.rsplit(".", 1)[1],
                )

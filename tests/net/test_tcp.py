"""TCP congestion-control model tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.tcp import DEFAULT_MSS, TcpConfig, TcpState
from repro.util.rng import RngStream


class TestTcpConfig:
    def test_defaults(self):
        c = TcpConfig()
        assert c.mss == DEFAULT_MSS == 1460
        assert c.initial_cwnd_segments == 2
        assert c.initial_ssthresh is None
        assert c.loss_mode == "deterministic"

    def test_rejects_bad_loss_mode(self):
        with pytest.raises(ValueError):
            TcpConfig(loss_mode="chaotic")

    def test_rejects_zero_mss(self):
        with pytest.raises(ValueError):
            TcpConfig(mss=0)


class TestSlowStart:
    def test_starts_in_slow_start(self):
        s = TcpState(TcpConfig())
        assert s.in_slow_start
        assert s.cwnd == 2 * DEFAULT_MSS

    def test_window_doubles_per_window_acked(self):
        # Acknowledging one full window in slow start doubles cwnd.
        s = TcpState(TcpConfig())
        w0 = s.cwnd
        s.on_ack(w0)
        assert s.cwnd == pytest.approx(2 * w0)

    def test_exponential_over_rounds(self):
        s = TcpState(TcpConfig())
        w0 = s.cwnd
        for _ in range(5):
            s.on_ack(s.cwnd)
        assert s.cwnd == pytest.approx(w0 * 2**5)

    def test_ssthresh_ends_slow_start(self):
        s = TcpState(TcpConfig(initial_ssthresh=10 * DEFAULT_MSS))
        # cwnd 2 -> 4 -> 8 -> clamped to 10 MSS exactly at the threshold
        s.on_ack(s.cwnd)
        s.on_ack(s.cwnd)
        s.on_ack(s.cwnd)
        assert s.cwnd == pytest.approx(10 * DEFAULT_MSS)
        assert not s.in_slow_start
        # thereafter growth is linear, ~1 MSS per window acked
        w = s.cwnd
        s.on_ack(w)
        assert s.cwnd == pytest.approx(w + DEFAULT_MSS, rel=0.05)

    def test_zero_ack_no_growth(self):
        s = TcpState(TcpConfig())
        w0 = s.cwnd
        s.on_ack(0)
        assert s.cwnd == w0


class TestCongestionAvoidance:
    def make_ca_state(self, cwnd_segments=100):
        s = TcpState(TcpConfig(initial_ssthresh=DEFAULT_MSS))
        s.cwnd = float(cwnd_segments * DEFAULT_MSS)
        s.ssthresh = DEFAULT_MSS  # below cwnd -> CA
        return s

    def test_linear_one_mss_per_rtt(self):
        # acking one full window (one RTT's worth) grows cwnd by ~1 MSS
        s = self.make_ca_state(100)
        w0 = s.cwnd
        s.on_ack(w0)
        assert s.cwnd == pytest.approx(w0 + DEFAULT_MSS, rel=0.02)

    def test_growth_rate_independent_of_chunking(self):
        # many small acks ~ one big ack
        s1 = self.make_ca_state(50)
        s2 = self.make_ca_state(50)
        total = s1.cwnd
        s1.on_ack(total)
        for _ in range(100):
            s2.on_ack(total / 100)
        assert s1.cwnd == pytest.approx(s2.cwnd, rel=1e-3)


class TestLossDeterministic:
    def test_no_loss_when_rate_zero(self):
        s = TcpState(TcpConfig(), loss_rate=0.0)
        assert not s.on_send(1e9)
        assert s.loss_events == 0

    def test_loss_fires_at_spacing(self):
        p = 0.01  # one loss per 100 packets
        s = TcpState(TcpConfig(), loss_rate=p)
        sent_packets_per_call = 10
        fired = 0
        for _ in range(30):
            if s.on_send(sent_packets_per_call * DEFAULT_MSS):
                fired += 1
        # 300 packets at spacing 100 -> 3 events
        assert fired == 3
        assert s.loss_events == 3

    def test_loss_halves_window(self):
        s = TcpState(TcpConfig(), loss_rate=1.0)  # every packet
        s.cwnd = 100 * DEFAULT_MSS
        s.ssthresh = DEFAULT_MSS
        s.on_send(DEFAULT_MSS)
        assert s.cwnd == pytest.approx(50 * DEFAULT_MSS)
        assert s.ssthresh == pytest.approx(50 * DEFAULT_MSS)

    def test_window_floor_two_mss(self):
        s = TcpState(TcpConfig(), loss_rate=1.0)
        s.cwnd = DEFAULT_MSS
        s.on_send(DEFAULT_MSS)
        assert s.cwnd >= 2 * DEFAULT_MSS

    def test_loss_exits_slow_start(self):
        s = TcpState(TcpConfig(), loss_rate=1.0)
        assert s.in_slow_start
        s.cwnd = 64 * DEFAULT_MSS
        s.on_send(DEFAULT_MSS)
        assert not s.in_slow_start


class TestLossRandom:
    def test_requires_rng(self):
        s = TcpState(TcpConfig(loss_mode="random"), loss_rate=0.5)
        with pytest.raises(AssertionError):
            s.on_send(DEFAULT_MSS)

    def test_reproducible_with_seed(self):
        def run(seed):
            s = TcpState(
                TcpConfig(loss_mode="random"),
                loss_rate=0.05,
                rng=RngStream(seed),
            )
            return [s.on_send(DEFAULT_MSS) for _ in range(200)]

        assert run(3) == run(3)

    def test_rate_statistically_sane(self):
        s = TcpState(
            TcpConfig(loss_mode="random"), loss_rate=0.02, rng=RngStream(11)
        )
        n = 20_000
        fired = sum(s.on_send(DEFAULT_MSS) for _ in range(n))
        assert fired / n == pytest.approx(0.02, rel=0.25)


class TestEffectiveWindow:
    def test_min_of_cwnd_and_rwnd(self):
        s = TcpState(TcpConfig())
        s.cwnd = 1e6
        assert s.effective_window(5e5) == 5e5
        assert s.effective_window(2e6) == 1e6

    @given(
        st.floats(min_value=1, max_value=1e9),
        st.floats(min_value=1, max_value=1e9),
    )
    def test_never_exceeds_either(self, cwnd, rwnd):
        s = TcpState(TcpConfig())
        s.cwnd = cwnd
        w = s.effective_window(rwnd)
        assert w <= cwnd and w <= rwnd


class TestInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["ack", "send"]),
                st.floats(min_value=1.0, max_value=1e6),
            ),
            max_size=60,
        )
    )
    def test_cwnd_stays_positive_and_finite_under_any_schedule(self, ops):
        s = TcpState(TcpConfig(), loss_rate=0.01)
        for kind, amount in ops:
            if kind == "ack":
                s.on_ack(amount)
            else:
                s.on_send(amount)
            assert s.cwnd >= 2 * DEFAULT_MSS or s.in_slow_start
            assert s.cwnd > 0
            assert math.isfinite(s.cwnd)

#!/usr/bin/env python3
"""Walk through the minimax scheduling pipeline on the paper's own
Figure 6-8 example.

Builds the hypothetical site graph, shows the strict MMP tree (with its
marginal detour to bell.uiuc.edu), applies the 10% edge-equivalence rule
to collapse it, and flattens the result into the depot route tables of
Section 4.2.

Run:  python examples/mmp_tree_walkthrough.py
"""

import math

from repro import LogisticalScheduler, build_mmp_tree
from repro.core.paths import tree_edges
from repro.lsl.routetable import RouteTable


class Figure6Graph:
    """The paper's three-site example (see Figures 6-8)."""

    def __init__(self):
        self.hosts = [
            "ash.ucsb.edu", "elm.ucsb.edu",
            "cetus.utk.edu", "dsi.utk.edu",
            "bell.uiuc.edu", "opus.uiuc.edu",
        ]
        base = {
            ("ash.ucsb.edu", "elm.ucsb.edu"): 1.0,
            ("cetus.utk.edu", "dsi.utk.edu"): 1.0,
            ("bell.uiuc.edu", "opus.uiuc.edu"): 1.0,
            ("ash.ucsb.edu", "cetus.utk.edu"): 4.0,
            ("ash.ucsb.edu", "dsi.utk.edu"): 4.1,
            ("elm.ucsb.edu", "cetus.utk.edu"): 4.1,
            ("elm.ucsb.edu", "dsi.utk.edu"): 4.2,
            ("ash.ucsb.edu", "bell.uiuc.edu"): 5.1,
            ("ash.ucsb.edu", "opus.uiuc.edu"): 5.0,
            ("elm.ucsb.edu", "bell.uiuc.edu"): 5.2,
            ("elm.ucsb.edu", "opus.uiuc.edu"): 5.1,
            ("cetus.utk.edu", "bell.uiuc.edu"): 6.0,
            ("cetus.utk.edu", "opus.uiuc.edu"): 6.1,
            ("dsi.utk.edu", "bell.uiuc.edu"): 6.1,
            ("dsi.utk.edu", "opus.uiuc.edu"): 6.2,
        }
        self._costs = {}
        for (a, b), c in base.items():
            self._costs[(a, b)] = c
            self._costs[(b, a)] = c

    def cost(self, src, dst):
        if src == dst:
            return 0.0
        return self._costs.get((src, dst), math.inf)


def show_tree(title, tree):
    print(f"\n{title}")
    for parent, child in tree_edges(tree):
        print(f"  {parent} -> {child}   "
              f"(path: {' -> '.join(tree.path_to(child))})")


def main() -> None:
    graph = Figure6Graph()

    strict = build_mmp_tree(graph, "ash.ucsb.edu", epsilon=0.0)
    show_tree("Figure 7: strict MMP tree from ash.ucsb.edu", strict)
    print(f"  note the detour: bell.uiuc.edu reached via "
          f"{strict.parent['bell.uiuc.edu']} (5.0 beats 5.1 by only 2%)")

    damped = build_mmp_tree(graph, "ash.ucsb.edu", epsilon=0.1)
    show_tree("Figure 8: with edge equivalence epsilon = 0.1", damped)
    print("  the marginal detour is gone; genuinely better relays survive")

    # route tables, as the depots would consume them
    scheduler = LogisticalScheduler(graph, epsilon=0.1)
    print("\nroute tables (only relayed destinations shown):")
    for host in graph.hosts:
        table = RouteTable.from_scheduler(scheduler, host)
        if len(table):
            print(f"  {table.to_text().strip()}")
    coverage = scheduler.coverage()
    print(f"\nscheduler coverage on this graph: {coverage:.1%} of pairs")


if __name__ == "__main__":
    main()

"""Event-loop-safe coroutines and plain sync code — RPR015 quiet."""

import asyncio


async def pump(reader, writer, session_lock):
    await asyncio.sleep(0.05)
    async with session_lock:
        data = await reader.read(4096)
    writer.write(data)
    await writer.drain()
    await session_lock.acquire()
    session_lock.release()
    return data


def sync_helper(session_sock, state_lock):
    """Blocking calls are fine outside a coroutine."""
    import time

    with state_lock:
        session_sock.sendall(b"x")
    time.sleep(0.01)

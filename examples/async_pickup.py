#!/usr/bin/env python3
"""Asynchronous sessions: park a dataset at a depot, pick it up later.

Section 2 of the paper: "an asynchronous session is possible with the
receiver discovering the session identifier and reading the data from
the last depot."  The sender and receiver never exist at the same time;
the 128-bit session id is the claim ticket.

Run:  python examples/async_pickup.py
"""

import hashlib

from repro.lsl.header import SessionHeader, new_session_id
from repro.lsl.socket_transport import DepotServer, fetch_pickup, send_session
from repro.util.rng import RngStream


def main() -> None:
    payload = RngStream(42).generator.bytes(512 << 10)
    digest = hashlib.sha256(payload).hexdigest()

    with DepotServer() as depot:
        print(f"depot listening on {depot.address}")

        # --- the producer: address the session AT the depot and leave ---
        header = SessionHeader(
            session_id=new_session_id(),
            src_ip="127.0.0.1",
            dst_ip=depot.host,
            src_port=0,
            dst_port=depot.port,
        )
        send_session(payload, header, depot.address)
        print(f"producer parked {len(payload)} bytes as session "
              f"{header.hex_id[:16]}... and disconnected")

        # wait until the depot has committed the bytes
        import time

        while header.hex_id not in depot.held:
            time.sleep(0.01)
        print(f"depot now holds {len(depot.held)} session(s)")

        # --- much later: the consumer, knowing only the session id ---
        received = fetch_pickup(depot.address, header.session_id)
        ok = hashlib.sha256(received).hexdigest() == digest
        print(f"consumer fetched {len(received)} bytes, integrity ok: {ok}")
        print(f"depot holds {len(depot.held)} session(s) after pickup")


if __name__ == "__main__":
    main()

"""ε selection policies for the edge-equivalence rule.

The paper fixes ε = 0.1 empirically ("clusters coalesced around 10 % and
higher values did little to alter the generated schedules") and notes
that "an automatic method of choosing ε would be very desirable.
Prediction error from the NWS and variance of the measurement set are
potentially good candidates."  All four candidates are implemented here:

* :class:`FixedEpsilon` — a constant;
* :class:`RelativeEpsilon` — the 10 % rule (a named constant, so the
  experiments read like the paper);
* :class:`NwsErrorEpsilon` — ε from the winning forecaster's relative
  prediction error, via a :class:`~repro.nws.matrix.CliqueAggregator`;
* :class:`VarianceEpsilon` — ε from the coefficient of variation of a
  measurement series.
"""

from __future__ import annotations

import math

from repro.nws.matrix import CliqueAggregator
from repro.nws.series import MeasurementSeries
from repro.util.validation import check_in_range, check_non_negative


class EpsilonPolicy:
    """Base class: produce the ε used when building an MMP tree."""

    def value(self) -> float:
        """The ε fraction (non-negative)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(value={self.value():.4f})"


class FixedEpsilon(EpsilonPolicy):
    """A constant ε."""

    def __init__(self, epsilon: float) -> None:
        check_non_negative("epsilon", epsilon)
        self._epsilon = epsilon

    def value(self) -> float:
        return self._epsilon


class RelativeEpsilon(FixedEpsilon):
    """The paper's 10 % rule: "if the evaluated edge was not 10 % better
    than the previous edge, then it was not added to the path"."""

    PAPER_VALUE = 0.1

    def __init__(self, epsilon: float = PAPER_VALUE) -> None:
        super().__init__(epsilon)


class NwsErrorEpsilon(EpsilonPolicy):
    """ε from NWS forecast error, aggregated across the matrix's streams.

    Takes the median relative prediction error over all probed host
    pairs — pairs whose forecasts wobble a lot should be treated as
    equivalent over a wider band.

    Parameters
    ----------
    aggregator:
        The clique aggregator feeding the performance matrix.
    floor, ceiling:
        Clamp for the resulting ε (a pathological stream should not
        disable tree-building entirely).
    """

    def __init__(
        self,
        aggregator: CliqueAggregator,
        floor: float = 0.01,
        ceiling: float = 0.5,
    ) -> None:
        check_non_negative("floor", floor)
        check_in_range("ceiling", ceiling, floor, 10.0)
        self._aggregator = aggregator
        self._floor = floor
        self._ceiling = ceiling

    def value(self) -> float:
        errors = []
        for src in self._aggregator.hosts:
            for dst in self._aggregator.hosts:
                if src == dst:
                    continue
                err = self._aggregator.prediction_error(src, dst)
                if not math.isnan(err) and math.isfinite(err):
                    errors.append(err)
        if not errors:
            return self._floor
        errors.sort()
        median = errors[len(errors) // 2]
        return min(self._ceiling, max(self._floor, median))


class VarianceEpsilon(EpsilonPolicy):
    """ε from the coefficient of variation of a measurement series.

    Suits single-pair studies where one probe stream characterises the
    environment's noise level.
    """

    def __init__(
        self,
        series: MeasurementSeries,
        floor: float = 0.01,
        ceiling: float = 0.5,
    ) -> None:
        check_non_negative("floor", floor)
        check_in_range("ceiling", ceiling, floor, 10.0)
        self._series = series
        self._floor = floor
        self._ceiling = ceiling

    def value(self) -> float:
        cov = self._series.coefficient_of_variation()
        if math.isnan(cov) or not math.isfinite(cov):
            return self._floor
        return min(self._ceiling, max(self._floor, cov))

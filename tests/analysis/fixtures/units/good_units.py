"""Suffix-consistent arithmetic: no findings expected."""


def add_sizes(a_bytes: int, b_bytes: int) -> int:
    return a_bytes + b_bytes


def to_rate(size_bytes: int, window_s: float) -> float:
    return size_bytes / window_s

"""Deterministic RNG stream tests."""

import numpy as np

from repro.util.rng import RngStream, spawn_streams, stable_hash32


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash32("abc") == stable_hash32("abc")

    def test_distinct_inputs(self):
        assert stable_hash32("abc") != stable_hash32("abd")

    def test_32_bit_range(self):
        for text in ("", "a", "long" * 100):
            h = stable_hash32(text)
            assert 0 <= h < 2**32


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(42).random(10)
        b = RngStream(42).random(10)
        assert np.array_equal(a, b)

    def test_different_seed_different_sequence(self):
        a = RngStream(42).random(10)
        b = RngStream(43).random(10)
        assert not np.array_equal(a, b)

    def test_named_streams_independent(self):
        root = RngStream(42)
        a = root.child("loss").random(10)
        b = root.child("workload").random(10)
        assert not np.array_equal(a, b)

    def test_child_reproducible(self):
        a = RngStream(7).child("x").random(5)
        b = RngStream(7).child("x").random(5)
        assert np.array_equal(a, b)

    def test_nested_children_distinct(self):
        root = RngStream(1)
        a = root.child("a").child("b").random(4)
        b = root.child("a/b")  # same flattened name -> same stream
        assert np.array_equal(a, b.random(4))

    def test_forwarders_cover_domain(self):
        s = RngStream(3)
        assert 0.0 <= s.uniform(0, 1) <= 1.0
        assert 0 <= s.integers(0, 10) < 10
        assert np.isfinite(s.normal())
        assert s.lognormal() > 0
        assert s.exponential() >= 0
        assert s.choice([1, 2, 3]) in (1, 2, 3)

    def test_shuffle_permutes(self):
        s = RngStream(4)
        seq = list(range(100))
        s.shuffle(seq)
        assert sorted(seq) == list(range(100))

    def test_generator_property(self):
        s = RngStream(5)
        assert isinstance(s.generator, np.random.Generator)


class TestSpawnStreams:
    def test_names_present(self):
        streams = spawn_streams(9, ["a", "b", "c"])
        assert set(streams) == {"a", "b", "c"}

    def test_streams_independent(self):
        streams = spawn_streams(9, ["a", "b"])
        assert not np.array_equal(streams["a"].random(8), streams["b"].random(8))

    def test_reproducible_across_calls(self):
        x = spawn_streams(9, ["a"])["a"].random(8)
        y = spawn_streams(9, ["a"])["a"].random(8)
        assert np.array_equal(x, y)

"""Real-socket integration tests: the LSL protocol over localhost TCP."""

import hashlib

import pytest

from repro.lsl.header import SessionHeader, new_session_id
from repro.lsl.options import LooseSourceRoute
from repro.lsl.socket_transport import DepotServer, SinkServer, send_session
from repro.util.rng import RngStream


def make_header(sink, hops=()):
    return SessionHeader(
        session_id=new_session_id(),
        src_ip="127.0.0.1",
        dst_ip="127.0.0.1",
        src_port=0,
        dst_port=sink.port,
        options=(LooseSourceRoute(hops=tuple(hops)),) if hops else (),
    )


class TestDirectSession:
    def test_payload_arrives_intact(self):
        payload = RngStream(1).generator.bytes(100_000)
        with SinkServer() as sink:
            header = make_header(sink)
            send_session(payload, header, sink.address)
            got = sink.wait_for(header.hex_id)
        assert got == payload

    def test_multiple_sessions_kept_separate(self):
        with SinkServer() as sink:
            h1, h2 = make_header(sink), make_header(sink)
            send_session(b"payload-one", h1, sink.address)
            send_session(b"payload-two", h2, sink.address)
            assert sink.wait_for(h1.hex_id) == b"payload-one"
            assert sink.wait_for(h2.hex_id) == b"payload-two"

    def test_header_recorded_at_sink(self):
        with SinkServer() as sink:
            h = make_header(sink)
            send_session(b"x", h, sink.address)
            sink.wait_for(h.hex_id)
            assert sink.headers[h.hex_id].session_id == h.session_id


class TestSingleDepotRelay:
    def test_relay_preserves_bytes(self):
        payload = RngStream(2).generator.bytes(250_000)
        with SinkServer() as sink, DepotServer() as depot:
            header = make_header(sink)  # no LSRR: depot forwards to dst
            send_session(payload, header, depot.address)
            got = sink.wait_for(header.hex_id)
        assert hashlib.sha256(got).digest() == hashlib.sha256(payload).digest()
        assert depot.sessions_forwarded == 1
        assert depot.bytes_forwarded == len(payload)


class TestLooseSourceRouteRelay:
    def test_two_depot_chain(self):
        payload = RngStream(3).generator.bytes(300_000)
        with SinkServer() as sink, DepotServer() as d1, DepotServer() as d2:
            # connect to d1; LSRR carries d2 as the remaining hop
            header = make_header(sink, hops=[("127.0.0.1", d2.port)])
            send_session(payload, header, d1.address)
            got = sink.wait_for(header.hex_id)
            assert got == payload
            assert d1.sessions_forwarded == 1
            assert d2.sessions_forwarded == 1

    def test_lsrr_consumed_by_arrival(self):
        with SinkServer() as sink, DepotServer() as d1, DepotServer() as d2:
            header = make_header(sink, hops=[("127.0.0.1", d2.port)])
            send_session(b"probe", header, d1.address)
            sink.wait_for(header.hex_id)
            arrived = sink.headers[header.hex_id]
            lsrr = arrived.option(LooseSourceRoute)
            assert lsrr is not None and lsrr.hops == ()


class TestRouteTableRelay:
    def test_depot_forwards_via_table(self):
        with SinkServer() as sink, DepotServer() as d2:
            table = {"127.0.0.1": f"127.0.0.1:{d2.port}"}
            with DepotServer(route_table=table) as d1:
                # dst 127.0.0.1 is rerouted by d1's table through d2;
                # d2 has no entry and forwards to the real destination
                header = make_header(sink)
                send_session(b"table-routed", header, d1.address)
                got = sink.wait_for(header.hex_id)
                assert got == b"table-routed"
                assert d1.sessions_forwarded == 1
                assert d2.sessions_forwarded == 1


class TestRobustness:
    def test_large_payload_through_small_buffer(self):
        payload = RngStream(4).generator.bytes(2_000_000)
        with SinkServer() as sink, DepotServer(buffer_size=16 << 10) as depot:
            header = make_header(sink)
            send_session(payload, header, depot.address)
            got = sink.wait_for(header.hex_id, timeout=30)
        assert got == payload

    def test_garbage_header_does_not_kill_server(self):
        import socket

        with SinkServer() as sink:
            with socket.create_connection(sink.address, timeout=5) as s:
                s.sendall(b"\x00" * 34)  # version 0: rejected
            # server should still work afterwards
            header = make_header(sink)
            send_session(b"after-garbage", header, sink.address)
            assert sink.wait_for(header.hex_id) == b"after-garbage"
            assert len(sink.errors) >= 1

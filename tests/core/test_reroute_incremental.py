"""Differential suite pinning incremental reroute to the full rebuild.

:func:`repair_mmp_tree` promises *exact* equivalence — parent pointers
and float costs identical to ``build_mmp_tree`` over the reduced relay
set, not merely equal path costs.  The property tests here generate
tie-rich random meshes (small bandwidth pools make equal minimax costs
common, which is where the settle-order bookkeeping can go wrong) and
random avoid sets, including ones that disconnect the destination or
sever most of the graph (driving the repair into its dense-rebuild
fallback).
"""

from __future__ import annotations

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minimax import build_mmp_tree, repair_mmp_tree
from repro.core.scheduler import LogisticalScheduler
from repro.nws.matrix import PerformanceMatrix

from tests.core.graphs import DictGraph


def _random_matrix(
    n: int, seed: int, density: float, pool: tuple[float, ...]
) -> PerformanceMatrix:
    """A random directed mesh over a small bandwidth pool (tie-rich)."""
    rng = random.Random(seed)
    hosts = [f"h{i}" for i in range(n)]
    pm = PerformanceMatrix(hosts)
    for a, b in itertools.permutations(hosts, 2):
        if rng.random() < density:
            pm.set_bandwidth(a, b, rng.choice(pool))
    return pm


def _random_dict_graph(
    n: int, seed: int, density: float, pool: tuple[float, ...]
) -> DictGraph:
    """Same meshes without ``cost_matrix`` — the scalar repair path."""
    rng = random.Random(seed)
    hosts = [f"h{i}" for i in range(n)]
    costs = {}
    for a, b in itertools.permutations(hosts, 2):
        if rng.random() < density:
            costs[(a, b)] = 1.0 / rng.choice(pool)
    return DictGraph(hosts, costs)


mesh_params = st.tuples(
    st.integers(min_value=3, max_value=9),  # hosts
    st.integers(min_value=0, max_value=10**6),  # seed
    st.sampled_from([0.3, 0.6, 1.0]),  # density
    st.sampled_from([(1.0, 2.0), (1.0, 2.0, 4.0)]),  # bandwidth pool
    st.sampled_from([0.0, 0.1, 0.3]),  # epsilon
)


class TestRepairMatchesRebuild:
    @given(
        params=mesh_params,
        avoid_bits=st.integers(min_value=0, max_value=2**9 - 1),
        restrict=st.booleans(),
        dense=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_repair_equals_rebuild(
        self, params, avoid_bits, restrict, dense
    ):
        """Random mesh, random avoid set (possibly disconnecting),
        optional relay restriction, both graph flavours."""
        n, seed, density, pool, eps = params
        graph = (
            _random_matrix(n, seed, density, pool)
            if dense
            else _random_dict_graph(n, seed, density, pool)
        )
        hosts = graph.hosts
        start = hosts[seed % n]
        relay = (
            {h for i, h in enumerate(hosts) if (seed >> i) & 1} | {start}
            if restrict
            else None
        )
        # avoid set from the bitmask; never the start node
        avoid = {
            h
            for i, h in enumerate(hosts)
            if (avoid_bits >> i) & 1 and h != start
        }
        tree = build_mmp_tree(graph, start, eps, relay_nodes=relay)
        relay_new = (set(relay) if relay is not None else set(hosts)) - avoid
        oracle = build_mmp_tree(graph, start, eps, relay_nodes=relay_new)
        repaired = repair_mmp_tree(graph, tree, avoid)
        assert repaired.parent == oracle.parent
        assert repaired.cost == oracle.cost

    @given(
        params=mesh_params,
        avoid_bits=st.integers(min_value=0, max_value=2**9 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_scheduler_reroute_paths_agree(self, params, avoid_bits):
        """End to end: ``reroute(incremental=True)`` decisions equal the
        from-scratch oracle, including host caps and min_gain."""
        n, seed, density, pool, eps = params
        pm = _random_matrix(n, seed, density, pool)
        hosts = pm.hosts
        rng = random.Random(seed ^ 0xBEEF)
        src, dst = rng.sample(hosts, 2)
        kwargs = {}
        if rng.random() < 0.5:
            kwargs["host_bandwidth"] = {
                h: rng.choice([0.5, 1.0, 8.0])
                for h in rng.sample(hosts, rng.randint(1, n))
            }
        if rng.random() < 0.3:
            kwargs["min_gain"] = 1.2
        sched = LogisticalScheduler(pm, epsilon=eps, **kwargs)
        avoid = {
            h
            for i, h in enumerate(hosts)
            if (avoid_bits >> i) & 1 and h not in (src, dst)
        }
        fast = sched.reroute(src, dst, avoid)
        slow = sched.reroute(src, dst, avoid, incremental=False)
        assert fast == slow


class TestRepairEdgeCases:
    def _line_graph(self):
        # a -1- b -1- c plus a weak direct edge a-c: relaying via b wins
        return DictGraph(
            ["a", "b", "c"],
            {
                ("a", "b"): 1.0,
                ("b", "a"): 1.0,
                ("b", "c"): 1.0,
                ("c", "b"): 1.0,
                ("a", "c"): 10.0,
                ("c", "a"): 10.0,
            },
        )

    def test_empty_avoid_returns_cached_tree_object(self):
        g = self._line_graph()
        tree = build_mmp_tree(g, "a")
        assert repair_mmp_tree(g, tree, set()) is tree

    def test_avoiding_a_leaf_returns_cached_tree_object(self):
        # c never forwards in a's tree, so avoiding it changes nothing
        g = self._line_graph()
        tree = build_mmp_tree(g, "a")
        assert tree.parent["c"] == "b"
        assert repair_mmp_tree(g, tree, {"c"}) is tree

    def test_avoiding_the_relay_falls_back_to_direct(self):
        g = self._line_graph()
        tree = build_mmp_tree(g, "a")
        repaired = repair_mmp_tree(g, tree, {"b"})
        oracle = build_mmp_tree(g, "a", relay_nodes={"a", "c"})
        assert repaired.parent == oracle.parent
        assert repaired.cost == oracle.cost
        assert repaired.parent["c"] == "a"  # the weak direct edge

    def test_disconnecting_avoid_set_unreaches_dest(self):
        # no direct a-c edge at all: avoiding b strands c entirely
        g = DictGraph(
            ["a", "b", "c"],
            {
                ("a", "b"): 1.0,
                ("b", "a"): 1.0,
                ("b", "c"): 1.0,
                ("c", "b"): 1.0,
            },
        )
        tree = build_mmp_tree(g, "a")
        assert tree.reached("c")
        repaired = repair_mmp_tree(g, tree, {"b"})
        assert not repaired.reached("c")
        oracle = build_mmp_tree(g, "a", relay_nodes={"a", "c"})
        assert repaired.parent == oracle.parent
        assert repaired.cost == oracle.cost

    def test_scheduler_falls_back_to_direct_when_disconnected(self):
        pm = PerformanceMatrix(["a", "b", "c"])
        pm.set_bandwidth("a", "b", 10.0)
        pm.set_bandwidth("b", "c", 10.0)
        pm.set_bandwidth("a", "c", 1.0)
        sched = LogisticalScheduler(pm, epsilon=0.0)
        assert sched.decide("a", "c").use_lsl
        decision = sched.reroute("a", "c", {"b"})
        assert decision.route == ["a", "c"]
        assert not decision.use_lsl
        assert decision == sched.reroute("a", "c", {"b"}, incremental=False)

    def test_traceless_tree_falls_back_to_rebuild(self):
        g = self._line_graph()
        tree = build_mmp_tree(g, "a")
        tree.trace = None  # simulate a hand-built tree
        repaired = repair_mmp_tree(g, tree, {"b"})
        oracle = build_mmp_tree(g, "a", relay_nodes={"a", "c"})
        assert repaired.parent == oracle.parent
        assert repaired.cost == oracle.cost

    def test_repaired_tree_is_itself_repairable_via_fallback(self):
        # repaired trees carry no trace; a second repair must still be
        # exact (it re-derives from scratch)
        n, seed = 8, 1234
        pm = _random_matrix(n, seed, 1.0, (1.0, 2.0, 4.0))
        start = pm.hosts[0]
        tree = build_mmp_tree(pm, start, 0.1)
        once = repair_mmp_tree(pm, tree, {pm.hosts[1]})
        twice = repair_mmp_tree(pm, once, {pm.hosts[1], pm.hosts[2]})
        oracle = build_mmp_tree(
            pm,
            start,
            0.1,
            relay_nodes=set(pm.hosts) - {pm.hosts[1], pm.hosts[2]},
        )
        assert twice.parent == oracle.parent
        assert twice.cost == oracle.cost

    def test_large_avoid_set_takes_dense_fallback(self):
        # avoid most forwarders: the taint region crosses the half-graph
        # threshold and the dense rebuild must still match exactly
        n, seed = 12, 77
        pm = _random_matrix(n, seed, 1.0, (1.0, 2.0))
        start = pm.hosts[0]
        tree = build_mmp_tree(pm, start, 0.1)
        avoid = set(pm.hosts[1:9])
        oracle = build_mmp_tree(
            pm, start, 0.1, relay_nodes=set(pm.hosts) - avoid
        )
        repaired = repair_mmp_tree(pm, tree, avoid)
        assert repaired.parent == oracle.parent
        assert repaired.cost == oracle.cost

    def test_avoiding_endpoints_is_rejected(self):
        pm = _random_matrix(4, 5, 1.0, (1.0, 2.0))
        sched = LogisticalScheduler(pm)
        a, b, c = pm.hosts[:3]
        with pytest.raises(ValueError, match="endpoint"):
            sched.reroute(a, b, {a})
        with pytest.raises(ValueError, match="endpoint"):
            sched.reroute(a, b, {b, c})

    def test_reroute_does_not_poison_the_tree_cache(self):
        pm = _random_matrix(6, 9, 1.0, (1.0, 2.0, 4.0))
        sched = LogisticalScheduler(pm, epsilon=0.1)
        src, dst = pm.hosts[0], pm.hosts[-1]
        before = sched.decide(src, dst)
        sched.reroute(src, dst, {pm.hosts[1], pm.hosts[2]})
        assert sched.decide(src, dst) == before
        # the cached fault-free tree still carries its trace
        assert sched.tree(src).trace is not None


class TestRouteTableMemoization:
    def test_first_hops_matches_next_hop(self):
        pm = _random_matrix(9, 21, 0.6, (1.0, 2.0, 4.0))
        tree = build_mmp_tree(pm, pm.hosts[0], 0.1)
        hops = tree.first_hops()
        for dest in tree.parent:
            if dest != tree.start:
                assert hops[dest] == tree.next_hop(dest)
        assert hops is tree.first_hops()  # memoized

    def test_route_table_cached_and_consistent_with_decide(self):
        pm = _random_matrix(8, 33, 1.0, (1.0, 2.0, 4.0))
        sched = LogisticalScheduler(pm, epsilon=0.1, min_gain=1.1)
        node = pm.hosts[0]
        table = sched.route_table(node)
        for dest, hop in table.items():
            decision = sched.decide(node, dest)
            expected = decision.route[1] if decision.use_lsl else dest
            assert hop == expected
        # cache hit returns an equal but independent mapping
        again = sched.route_table(node)
        assert again == table
        again[pm.hosts[1]] = "poisoned"
        assert sched.route_table(node) == table

    def test_invalidate_clears_route_table_cache(self):
        pm = _random_matrix(5, 3, 1.0, (1.0, 2.0))
        sched = LogisticalScheduler(pm, epsilon=0.1)
        node = pm.hosts[0]
        sched.route_table(node)
        assert node in sched._route_tables
        sched.invalidate()
        assert not sched._route_tables
        assert sched._dense is None

    def test_dense_cache_matches_scalar_costs(self):
        pm = _random_matrix(7, 11, 0.6, (1.0, 2.0, 4.0))
        sched = LogisticalScheduler(
            pm, host_bandwidth={pm.hosts[2]: 0.5, pm.hosts[3]: 4.0}
        )
        dense = sched._dense_cost()
        hosts = sched.hosts
        for i, a in enumerate(hosts):
            for j, b in enumerate(hosts):
                if i == j:
                    continue
                expected = sched._graph.cost(a, b)
                got = float(dense[i, j])
                assert got == expected or (
                    math.isinf(got) and math.isinf(expected)
                )

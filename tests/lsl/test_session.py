"""In-memory end-to-end protocol tests (source -> depots -> sink)."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsl.depot import Depot, DepotConfig
from repro.lsl.header import SessionType
from repro.lsl.options import LooseSourceRoute
from repro.lsl.session import SinkEndpoint, SourceEndpoint, run_session
from repro.util.rng import RngStream


DEPOT_A = ("10.1.0.1", 9000)
DEPOT_B = ("10.1.0.2", 9000)
SINK = ("10.9.9.9", 7777)


def make_depots(capacity=1 << 20):
    return {
        DEPOT_A: Depot(DepotConfig(name="A", capacity=capacity)),
        DEPOT_B: Depot(DepotConfig(name="B", capacity=capacity)),
    }


def make_source(route=()):
    return SourceEndpoint(
        src_ip="10.0.0.1",
        src_port=5000,
        dst_ip=SINK[0],
        dst_port=SINK[1],
        depot_route=tuple(route),
    )


class TestHeaderBuilding:
    def test_no_route_no_option(self):
        h = make_source().build_header()
        assert h.option(LooseSourceRoute) is None

    def test_single_depot_route_has_no_lsrr(self):
        # the source connects to the sole depot directly
        h = make_source([DEPOT_A]).build_header()
        assert h.option(LooseSourceRoute) is None

    def test_multi_depot_route_lists_downstream_hops(self):
        h = make_source([DEPOT_A, DEPOT_B]).build_header()
        lsrr = h.option(LooseSourceRoute)
        assert lsrr.hops == (DEPOT_B,)

    def test_type_is_point_to_point(self):
        assert make_source().build_header().session_type is SessionType.POINT_TO_POINT

    def test_chunks_partition_payload(self):
        src = make_source()
        src.chunk_size = 10
        payload = b"x" * 35
        chunks = list(src.chunks(payload))
        assert b"".join(chunks) == payload
        assert [len(c) for c in chunks] == [10, 10, 10, 5]


class TestRunSessionDirect:
    def test_direct_delivery(self):
        sink = SinkEndpoint()
        payload = b"direct payload"
        run_session(make_source(), {}, sink, payload)
        assert sink.payload == payload

    def test_sink_sees_header(self):
        sink = SinkEndpoint()
        run_session(make_source(), {}, sink, b"x")
        assert len(sink.headers) == 1
        assert sink.headers[0].dst_ip == SINK[0]


class TestRunSessionRelayed:
    def test_single_depot_integrity(self):
        sink = SinkEndpoint()
        payload = RngStream(1).generator.bytes(300_000)
        run_session(make_source([DEPOT_A]), make_depots(), sink, payload)
        assert sink.digest() == hashlib.sha256(payload).hexdigest()

    def test_two_depot_integrity(self):
        sink = SinkEndpoint()
        payload = RngStream(2).generator.bytes(500_000)
        depots = make_depots()
        run_session(
            make_source([DEPOT_A, DEPOT_B]), depots, sink, payload
        )
        assert sink.payload == payload
        # both depots saw the full byte count
        assert depots[DEPOT_A].total_through == len(payload)
        assert depots[DEPOT_B].total_through == len(payload)

    def test_sink_header_has_exhausted_route(self):
        sink = SinkEndpoint()
        run_session(make_source([DEPOT_A, DEPOT_B]), make_depots(), sink, b"y")
        lsrr = sink.headers[0].option(LooseSourceRoute)
        assert lsrr is None or lsrr.hops == ()

    def test_tiny_buffers_still_deliver(self):
        """Bounded depot pools force many back-pressure cycles; bytes
        must still arrive intact and in order."""
        sink = SinkEndpoint()
        payload = bytes(range(256)) * 2000  # 512 KB
        depots = make_depots(capacity=10_000)
        run_session(
            make_source([DEPOT_A, DEPOT_B]),
            depots,
            sink,
            payload,
            forward_chunk=3_000,
        )
        assert sink.payload == payload

    def test_depot_buffers_empty_after_session(self):
        depots = make_depots()
        sink = SinkEndpoint()
        run_session(make_source([DEPOT_A]), depots, sink, b"z" * 10_000)
        assert depots[DEPOT_A].pool_used == 0

    @given(st.integers(min_value=1, max_value=200_000))
    @settings(max_examples=10, deadline=None)
    def test_any_size_is_conserved(self, size):
        sink = SinkEndpoint()
        payload = b"\xab" * size
        run_session(make_source([DEPOT_A]), make_depots(), sink, payload)
        assert len(sink.payload) == size

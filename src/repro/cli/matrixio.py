"""Loading and saving performance matrices as plain text.

Format: one directed pair per line, ``src dst bandwidth_bytes_per_sec``;
``#`` starts a comment.  Symmetric entries must be listed in both
directions (the scheduler treats the graph as directed).
"""

from __future__ import annotations

from repro.nws.matrix import PerformanceMatrix


def parse_matrix(text: str) -> PerformanceMatrix:
    """Parse matrix text into a :class:`PerformanceMatrix`.

    Raises
    ------
    ValueError
        On malformed lines, duplicate entries or non-positive values.
    """
    entries: list[tuple[str, str, float]] = []
    hosts: set[str] = set()
    seen: set[tuple[str, str]] = set()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 3:
            raise ValueError(
                f"line {lineno}: expected 'src dst bandwidth', got {raw!r}"
            )
        src, dst, value_text = fields
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bandwidth {value_text!r} is not a number"
            ) from None
        if value <= 0:
            raise ValueError(f"line {lineno}: bandwidth must be positive")
        if src == dst:
            raise ValueError(f"line {lineno}: self-pair {src!r}")
        if (src, dst) in seen:
            raise ValueError(f"line {lineno}: duplicate pair {src}->{dst}")
        seen.add((src, dst))
        hosts.update((src, dst))
        entries.append((src, dst, value))
    if not entries:
        raise ValueError("matrix file contains no entries")
    matrix = PerformanceMatrix(sorted(hosts))
    for src, dst, value in entries:
        matrix.set_bandwidth(src, dst, value)
    return matrix


def load_matrix(path: str) -> PerformanceMatrix:
    """Read a matrix file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_matrix(fh.read())


def dump_matrix(matrix: PerformanceMatrix) -> str:
    """Serialise a matrix back to the text format (known entries only)."""
    import math

    lines = ["# src dst bandwidth_bytes_per_sec"]
    for src, dst in matrix.pairs():
        bw = matrix.bandwidth(src, dst)
        if not math.isnan(bw) and math.isfinite(bw):
            lines.append(f"{src} {dst} {bw:.6g}")
    return "\n".join(lines) + "\n"

"""A simulator-side narrator whose vocabulary drifts from the transport's."""


def narrate(timeline):
    timeline.record("connect", stream="down")
    timeline.record("header_tx", stream="down")
    timeline.record("complete", stream="down")


def narrate_abort(timeline):
    timeline.record("connect", stream="down")
    timeline.record("error", stream="down")  # expect: RPR017

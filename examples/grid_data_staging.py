#!/usr/bin/env python3
"""Grid data staging: move a dataset from a producer site to a compute
site over a scheduled depot path, then stage it to several replicas with
the multicast tree option.

This is the workload the paper's introduction motivates: a Grid job
whose input data lives far from the machines that will crunch it.

Run:  python examples/grid_data_staging.py
"""

from repro import (
    CliqueAggregator,
    LogisticalScheduler,
    NetworkSimulator,
    mb,
)
from repro.lsl.depot import Depot, DepotConfig
from repro.lsl.multicast import StagingTree, simulate_staging, staging_time_model
from repro.testbed.abilene import abilene_testbed
from repro.util.rng import RngStream
from repro.util.units import format_rate


def main() -> None:
    # ---- the environment: 10 universities + 11 Abilene POP depots --------
    testbed = abilene_testbed(seed=1)

    # ---- NWS probing: build the performance matrix ------------------------
    aggregator = CliqueAggregator(testbed.site_of)
    rng = RngStream(7, "probes")
    for src_site, dst_site in testbed.site_pairs():
        a = testbed.hosts_at(src_site)[0]
        b = testbed.hosts_at(dst_site)[0]
        true = testbed.true_bandwidth(a, b)
        for _ in range(8):
            aggregator.observe(a, b, true * float(rng.lognormal(0, 0.05)))

    scheduler = LogisticalScheduler(
        aggregator.build_matrix(),
        depot_hosts=set(testbed.depot_hosts),
    )

    # pick the producer/consumer pair the scheduler expects to help most
    producer, consumer = max(
        (
            (a, b)
            for a in testbed.endpoint_hosts
            for b in testbed.endpoint_hosts
            if a != b
        ),
        key=lambda pair: scheduler.decide(*pair).predicted_gain,
    )
    decision = scheduler.decide(producer, consumer)
    print(f"staging from {producer} to {consumer}")
    print(f"scheduled route: {' -> '.join(decision.route)}")
    print(f"predicted gain : {decision.predicted_gain:.2f}x")

    # ---- simulate the staging transfer ------------------------------------
    size = mb(128)
    sim = NetworkSimulator(seed=2)
    direct_spec = testbed.sublink_spec(producer, consumer)
    d = sim.run_direct(direct_spec, size, record_trace=False)
    if decision.use_lsl:
        specs = testbed.route_specs(decision.route)
        r = sim.run_relay(specs, size, record_trace=False)
        print(f"direct   : {d.duration:6.1f} s ({format_rate(d.bandwidth)})")
        print(f"scheduled: {r.duration:6.1f} s ({format_rate(r.bandwidth)})")
        print(f"measured speedup: {r.bandwidth / d.bandwidth:.2f}x")
    else:
        print(f"direct is already optimal: {d.duration:.1f} s")

    # ---- replicate to three more sites with a staging tree ----------------
    replicas = testbed.depot_hosts[:3]
    addresses = {h: (f"10.0.0.{i + 1}", 9000) for i, h in enumerate(
        [consumer, *replicas]
    )}
    tree = StagingTree.from_parent_map(
        addresses[consumer],
        {addresses[consumer]: [addresses[r] for r in replicas]},
    )
    engines = {
        addr: Depot(DepotConfig(name=host))
        for host, addr in addresses.items()
    }
    payload = bytes(RngStream(3).generator.bytes(1 << 20))  # a 1 MB sample
    received = simulate_staging(tree, engines, payload)
    ok = all(copy == payload for copy in received.values())
    print(f"\nstaged 1 MB sample to {len(received)} sites, byte-exact: {ok}")

    t = staging_time_model(
        tree,
        lambda a, b: testbed.sublink_spec(consumer, replicas[0]),
        size,
    )
    print(f"estimated synchronous staging time for 128 MB: {t:.1f} s")


if __name__ == "__main__":
    main()

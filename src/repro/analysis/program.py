"""Whole-program facts: call graph, entry points and lock-order graphs.

The per-file rules (RPR001–RPR012) see one module at a time; the
interprocedural rules (RPR013–RPR017) need facts that only exist across
function and module boundaries.  :func:`program_graph` parses nothing
itself — it consumes the walker's already-parsed :class:`Project` and
builds, exactly once per run (memoised in ``project.cache``):

* a **function index** — every function and method, keyed by a dotted
  qualname (``repro.lsl.socket_transport.DepotServer.handle``);
* a **call graph** — ``self.<m>()`` edges resolved within the flattened
  class, bare-name calls resolved to same-module functions, and
  imported calls resolved through each module's alias table;
* **entry points** — ``threading.Thread(target=...)`` targets, argparse
  ``set_defaults(func=...)`` CLI handlers, and ``main`` functions;
* a **lock-order graph per class** — nodes are ``Class.attr`` lock
  attributes, and an edge ``A → B`` means *some* code path acquires
  ``B`` while holding ``A``, either directly (nested ``with`` blocks)
  or through any chain of ``self.<m>()`` calls (a fixpoint over the
  class's self-call graph).

Known approximations (documented in ``docs/ANALYSIS.md``): classes are
flattened over *same-module* single inheritance only; lock identity is
``self.<attr>`` (locks reached through parameters or other objects'
attributes are invisible); and cross-object deadlocks (two instances
locking each other) are out of scope.  The runtime complement,
:mod:`repro.analysis.lockwatch`, checks observed orders against this
graph so each side covers the other's blind spots.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutil import ImportMap, is_self_attr, terminal_name
from repro.analysis.walker import ModuleSource, Project

_LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}

#: ``project.cache`` key under which the graph is memoised.
_CACHE_KEY = "program_graph"


@dataclass
class FlatClass:
    """One class with same-module bases folded in.

    ``methods`` is the effective (override-resolved) method map;
    ``all_defs`` additionally keeps *shadowed* base methods, because a
    base ``__init__`` that a subclass overrides still runs (via
    ``super()``) and still creates the class's locks.
    """

    methods: dict[str, ast.FunctionDef]
    all_defs: list[ast.FunctionDef]


def flatten_classes(tree: ast.Module) -> dict[str, FlatClass]:
    """Class name -> flattened view, same-module single inheritance."""
    classes: dict[str, ast.ClassDef] = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }

    def flatten(name: str, seen: frozenset[str]) -> FlatClass:
        node = classes.get(name)
        if node is None or name in seen:
            return FlatClass(methods={}, all_defs=[])
        merged: dict[str, ast.FunctionDef] = {}
        defs: list[ast.FunctionDef] = []
        for base in node.bases:
            base_name = terminal_name(base)
            if base_name in classes:
                flat = flatten(base_name, seen | {name})
                merged.update(flat.methods)
                defs.extend(flat.all_defs)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                merged[item.name] = item
                defs.append(item)
        return FlatClass(methods=merged, all_defs=defs)

    return {name: flatten(name, frozenset()) for name in classes}


def module_dotted_name(module: ModuleSource) -> str:
    """Importable dotted path of a module, best effort.

    Files under a package rooted at ``repro`` (the live tree) resolve to
    their real import path; anything else (fixtures, scratch trees)
    falls back to the bare stem, which still keys call edges within one
    run because fixture modules import each other by stem.
    """
    parts = module.abspath.parts
    if "repro" in parts:
        idx = parts.index("repro")
        tail = [p for p in parts[idx:]]
        tail[-1] = module.stem
        if tail[-1] == "__init__":
            tail = tail[:-1]
        return ".".join(tail)
    return module.stem


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method in the program."""

    qualname: str  #: ``module.Class.name`` or ``module.name``
    name: str
    class_name: str | None
    module_path: str  #: the module's display path (finding-compatible)
    lineno: int
    is_async: bool


@dataclass(frozen=True)
class LockEdge:
    """``src`` held while ``dst`` is acquired, at a concrete site.

    ``via`` names the ``self.<m>()`` call chain when the acquisition is
    interprocedural (empty for a directly nested ``with``).
    """

    src: str
    dst: str
    method: str
    line: int
    col: int
    via: str = ""


@dataclass
class ClassLocks:
    """The lock universe of one flattened class."""

    class_name: str
    module_path: str
    locks: set[str] = field(default_factory=set)
    #: first site observed per (src, dst) pair
    edges: dict[tuple[str, str], LockEdge] = field(default_factory=dict)

    def node(self, attr: str) -> str:
        """The graph node name for lock attribute ``attr``."""
        return f"{self.class_name}.{attr}"

    def cycles(self) -> list[list[tuple[str, str]]]:
        """Elementary cycles in the lock-order graph, as edge lists.

        Each cycle is reported once, rooted at its smallest node so the
        output is deterministic.  A self-edge (re-acquiring the same
        non-reentrant lock) is a one-edge cycle.
        """
        adjacency: dict[str, list[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, []).append(dst)
        for dsts in adjacency.values():
            dsts.sort()

        cycles: list[list[tuple[str, str]]] = []
        seen_cycles: set[tuple[str, ...]] = set()

        def dfs(start: str, node: str, path: list[str]) -> None:
            for nxt in adjacency.get(node, ()):
                if nxt == start:
                    cycle = path + [start]
                    # canonical form: rotate to the smallest node
                    nodes = tuple(cycle[:-1])
                    pivot = nodes.index(min(nodes))
                    canon = nodes[pivot:] + nodes[:pivot]
                    if canon in seen_cycles:
                        continue
                    seen_cycles.add(canon)
                    cycles.append(
                        [
                            (cycle[i], cycle[i + 1])
                            for i in range(len(cycle) - 1)
                        ]
                    )
                elif nxt not in path and nxt > start:
                    # only expand through nodes larger than the root:
                    # every elementary cycle is found exactly once,
                    # rooted at its smallest node
                    dfs(start, nxt, path + [nxt])

        for root in sorted(adjacency):
            dfs(root, root, [root])
        return cycles


@dataclass
class ProgramGraph:
    """Everything the interprocedural rules consume."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    calls: dict[str, set[str]] = field(default_factory=dict)
    #: qualname -> entry kind ("thread" | "cli" | "main")
    entry_points: dict[str, str] = field(default_factory=dict)
    class_locks: list[ClassLocks] = field(default_factory=list)

    def lock_nodes(self) -> set[str]:
        """Every ``Class.attr`` lock node in the program."""
        nodes: set[str] = set()
        for cls in self.class_locks:
            nodes.update(cls.node(a) for a in cls.locks)
        return nodes

    def admitted_edges(self) -> set[tuple[str, str]]:
        """Every statically admitted (holder, acquired) order."""
        admitted: set[tuple[str, str]] = set()
        for cls in self.class_locks:
            admitted.update(cls.edges)
        return admitted

    def reachable_from(self, roots: set[str]) -> set[str]:
        """Transitive call-graph closure from ``roots`` (qualnames)."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.calls or r in self.functions]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(
                c for c in self.calls.get(name, ()) if c not in seen
            )
        return seen


class _LockEdgeScanner(ast.NodeVisitor):
    """Collect lock-order edges in one method.

    Tracks the stack of ``with self.<lock>:`` blocks; a new direct
    acquisition adds an edge from every held lock, and a ``self.<m>()``
    call under a held lock adds edges to every lock ``m`` eventually
    acquires.  Nested function/class definitions are skipped — a closure
    body runs when called, not where it is defined.
    """

    def __init__(
        self,
        owner: ClassLocks,
        method: str,
        eventual: dict[str, set[str]],
    ) -> None:
        self._owner = owner
        self._method = method
        self._eventual = eventual
        self._stack: list[str] = []

    def _edge(
        self, dst: str, node: ast.AST, via: str = ""
    ) -> None:
        for held in self._stack:
            key = (self._owner.node(held), self._owner.node(dst))
            if key not in self._owner.edges:
                self._owner.edges[key] = LockEdge(
                    src=key[0],
                    dst=key[1],
                    method=self._method,
                    line=node.lineno,
                    col=node.col_offset,
                    via=via,
                )

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[str] = []
        for item in node.items:
            attr = is_self_attr(item.context_expr)
            if attr is not None and attr in self._owner.locks:
                self._edge(attr, item.context_expr)
                self._stack.append(attr)
                acquired.append(attr)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self._stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        attr = (
            is_self_attr(node.func)
            if isinstance(node.func, ast.Attribute)
            else None
        )
        if attr is not None and self._stack:
            for lock in sorted(self._eventual.get(attr, ())):
                self._edge(lock, node, via=attr)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # closure bodies execute later, outside this with-stack

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _direct_locks_and_calls(
    method: ast.FunctionDef, locks: set[str]
) -> tuple[set[str], set[str]]:
    """Locks directly acquired and ``self.<m>`` names called in a method
    (nested definitions excluded)."""
    acquired: set[str] = set()
    calls: set[str] = set()

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                continue
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    attr = is_self_attr(item.context_expr)
                    if attr is not None and attr in locks:
                        acquired.add(attr)
            if isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                attr = is_self_attr(child.func)
                if attr is not None:
                    calls.add(attr)
            walk(child)

    walk(method)
    return acquired, calls


def _class_locks(
    class_name: str, flat: FlatClass, module: ModuleSource, imports: ImportMap
) -> ClassLocks | None:
    """Build one class's lock graph, or None when it has no locks."""
    locks: set[str] = set()
    for method in flat.all_defs:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if imports.resolve_call(node.value) in _LOCK_FACTORIES:
                    for target in node.targets:
                        attr = is_self_attr(target)
                        if attr is not None:
                            locks.add(attr)
    if not locks:
        return None

    owner = ClassLocks(
        class_name=class_name, module_path=module.path, locks=locks
    )
    direct: dict[str, set[str]] = {}
    callees: dict[str, set[str]] = {}
    for name, method in flat.methods.items():
        direct[name], callees[name] = _direct_locks_and_calls(method, locks)

    # fixpoint: locks a method eventually acquires through self-calls
    eventual = {name: set(acquired) for name, acquired in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in eventual:
            for callee in callees[name]:
                extra = eventual.get(callee, set()) - eventual[name]
                if extra:
                    eventual[name] |= extra
                    changed = True

    for name, method in flat.methods.items():
        scanner = _LockEdgeScanner(owner, name, eventual)
        # visit the body, not the def node itself — the scanner's
        # visit_FunctionDef is a nested-definition guard
        for stmt in method.body:
            scanner.visit(stmt)
    return owner


def _function_index(
    module: ModuleSource, modname: str
) -> dict[str, tuple[FunctionInfo, ast.FunctionDef]]:
    """Top-level functions and (flattened) class methods of one module."""
    index: dict[str, tuple[FunctionInfo, ast.FunctionDef]] = {}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{modname}.{node.name}"
            index[qual] = (
                FunctionInfo(
                    qualname=qual,
                    name=node.name,
                    class_name=None,
                    module_path=module.path,
                    lineno=node.lineno,
                    is_async=isinstance(node, ast.AsyncFunctionDef),
                ),
                node,
            )
    for class_name, flat in flatten_classes(module.tree).items():
        for name, method in flat.methods.items():
            qual = f"{modname}.{class_name}.{name}"
            index[qual] = (
                FunctionInfo(
                    qualname=qual,
                    name=name,
                    class_name=class_name,
                    module_path=module.path,
                    lineno=method.lineno,
                    is_async=isinstance(method, ast.AsyncFunctionDef),
                ),
                method,
            )
    return index


def _call_edges(
    qual: str,
    info: FunctionInfo,
    node: ast.FunctionDef,
    modname: str,
    module_functions: set[str],
    all_functions: set[str],
    imports: ImportMap,
) -> set[str]:
    """Resolved callee qualnames of one function."""
    edges: set[str] = set()
    prefix = (
        f"{modname}.{info.class_name}." if info.class_name else None
    )
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        attr = (
            is_self_attr(child.func)
            if isinstance(child.func, ast.Attribute)
            else None
        )
        if attr is not None and prefix is not None:
            candidate = f"{prefix}{attr}"
            if candidate in all_functions:
                edges.add(candidate)
            continue
        if isinstance(child.func, ast.Name):
            candidate = f"{modname}.{child.func.id}"
            if candidate in module_functions:
                edges.add(candidate)
                continue
        resolved = imports.resolve_call(child)
        if resolved is not None and resolved in all_functions:
            edges.add(resolved)
    return edges


def _entry_points(
    module: ModuleSource,
    modname: str,
    index: dict[str, tuple[FunctionInfo, ast.FunctionDef]],
    imports: ImportMap,
) -> dict[str, str]:
    """Thread targets, argparse handlers and ``main`` in one module."""
    entries: dict[str, str] = {}
    by_class: dict[str | None, set[str]] = {}
    for info, _ in index.values():
        by_class.setdefault(info.class_name, set()).add(info.name)

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if imports.resolve_call(node) == "threading.Thread":
            for kw in node.keywords:
                if kw.arg != "target":
                    continue
                attr = is_self_attr(kw.value)
                if attr is not None:
                    for cls, names in by_class.items():
                        if cls is not None and attr in names:
                            entries[f"{modname}.{cls}.{attr}"] = "thread"
                elif isinstance(kw.value, ast.Name):
                    qual = f"{modname}.{kw.value.id}"
                    if qual in index:
                        entries[qual] = "thread"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "set_defaults"
        ):
            for kw in node.keywords:
                if kw.arg != "func":
                    continue
                if isinstance(kw.value, ast.Name):
                    qual = f"{modname}.{kw.value.id}"
                    if qual in index:
                        entries[qual] = "cli"
                        continue
                dotted = None
                if isinstance(kw.value, (ast.Attribute, ast.Name)):
                    probe = ast.Call(func=kw.value, args=[], keywords=[])
                    dotted = imports.resolve_call(probe)
                if dotted is not None:
                    entries[dotted] = "cli"

    main_qual = f"{modname}.main"
    if main_qual in index:
        entries.setdefault(main_qual, "main")
    return entries


def program_graph(project: Project) -> ProgramGraph:
    """Build (or fetch the memoised) whole-program graph for a run."""
    cached = project.cache.get(_CACHE_KEY)
    if cached is not None:
        return cached

    graph = ProgramGraph()
    per_module: list[
        tuple[
            ModuleSource,
            str,
            ImportMap,
            dict[str, tuple[FunctionInfo, ast.FunctionDef]],
        ]
    ] = []
    for module in project.modules:
        modname = module_dotted_name(module)
        imports = ImportMap(module.tree)
        index = _function_index(module, modname)
        per_module.append((module, modname, imports, index))
        for qual, (info, _) in index.items():
            graph.functions[qual] = info

    all_functions = set(graph.functions)
    for module, modname, imports, index in per_module:
        module_functions = {
            q
            for q, (info, _) in index.items()
            if info.class_name is None
        }
        for qual, (info, node) in index.items():
            graph.calls[qual] = _call_edges(
                qual,
                info,
                node,
                modname,
                module_functions,
                all_functions,
                imports,
            )
        graph.entry_points.update(
            _entry_points(module, modname, index, imports)
        )
        for class_name, flat in flatten_classes(module.tree).items():
            owner = _class_locks(class_name, flat, module, imports)
            if owner is not None:
                graph.class_locks.append(owner)

    project.cache[_CACHE_KEY] = graph
    return graph

"""The Minimax Path (MMP) tree algorithm — the paper's Appendix A.

The cost of a path is the weight of its heaviest edge
(``max(cost(i, j) | (i, j) in P)``), so the optimal route from a source is
the one whose worst hop is least bad: exactly the right objective when
path throughput is dominated by the slowest pipelined sublink.

The algorithm is Dijkstra with a different relaxation::

    relax_cost = max(edge(new, other), cost[new])
    if relax_cost * (1 + epsilon) < cost[other]:
        adopt new as other's parent

The ε term is the paper's **edge equivalence**: an alternative route is
adopted only when it is more than an ε fraction better than the incumbent,
which keeps measurement jitter from manufacturing spurious multi-hop
detours (Figures 7 → 8).  With ε = 0 this is the textbook minimax tree and
is optimal; with ε > 0 the tree is within a factor ``(1 + ε)`` of optimal
on every path, trading that slack for stability.

Complexity is ``O(E log V)`` with the lazy heap used here; the paper's
fully connected graphs make ``E = V²``.

Failure recovery needs the same tree minus a handful of depots, and a
full rebuild per failover is the scheduler's hot path (ROADMAP item 3).
:func:`build_mmp_tree` therefore records a :class:`BuildTrace` — the
chronological list of successful adoptions — and
:func:`repair_mmp_tree` replays it: only nodes whose adoption history
is transitively touched by the avoided depots ("tainted" nodes) are
re-run against the graph; everything else is copied from the original
tree unchanged.  The repair is exact, not approximate — a verification
step re-taints any clean node that a repaired node could newly reach
(the ε filter makes costs non-monotone under node removal), and the
property suite pins repair output to a from-scratch rebuild.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.util.validation import check_non_negative


class CostGraph(Protocol):
    """What the tree builder needs from a graph: hosts and edge costs."""

    hosts: list[str]

    def cost(self, src: str, dst: str) -> float:
        """Weight of the directed edge ``src -> dst`` (``inf`` if absent)."""
        ...  # pragma: no cover - protocol


@dataclass
class BuildTrace:
    """Execution record of one :func:`build_mmp_tree` run.

    ``events`` is the chronological list of successful adoptions as
    ``(offerer_settle_cost, offerer, adoptee, relax_cost)`` tuples; an
    offer is made the moment its offerer settles, so
    ``(offerer_settle_cost, offerer)`` is the event's position in the
    run's total settle order (heap ties break on the node name).
    ``settles`` is the exact settle (pop) order of the run.  It is not
    derivable from the costs: with tied final costs the heap's order
    depends on *when* entries were pushed, so a repair that replays
    clean nodes must interleave live events into this recorded order,
    not into a ``(cost, name)`` sort.  ``relay_nodes`` preserves the
    forwarding restriction the tree was built under so a repair can
    subtract the avoided hosts from it.
    """

    relay_nodes: frozenset[str] | None
    events: list[tuple[float, str, str, float]]
    settles: list[str]
    _offerers: frozenset[str] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def offerers(self) -> frozenset[str]:
        """Every node that placed at least one winning offer (cached)."""
        if self._offerers is None:
            self._offerers = frozenset(ev[1] for ev in self.events)
        return self._offerers


@dataclass
class MinimaxTree:
    """The tree of best (minimax, ε-damped) paths from one start node.

    Attributes
    ----------
    start:
        Root node.
    parent:
        Predecessor of each reached node on its best path; the root is
        its own parent (as in the paper's pseudo-code).
    cost:
        Minimax cost of the best path to each reached node (0 for the
        root).  Unreachable nodes are absent from both maps.
    epsilon:
        The edge-equivalence fraction used to build the tree.
    trace:
        Build-time adoption record consumed by :func:`repair_mmp_tree`;
        ``None`` on hand-built or repaired trees (repairing those falls
        back to a full rebuild).  Excluded from equality.
    """

    start: str
    parent: dict[str, str]
    cost: dict[str, float]
    epsilon: float = 0.0
    trace: BuildTrace | None = field(default=None, repr=False, compare=False)
    _first_hops: dict[str, str] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def reached(self, node: str) -> bool:
        """True if ``node`` is connected to the root."""
        return node in self.parent

    def path_to(self, dest: str) -> list[str]:
        """The host sequence from the root to ``dest`` (inclusive).

        Raises
        ------
        KeyError
            If ``dest`` was never reached.
        """
        if dest not in self.parent:
            raise KeyError(f"{dest!r} not reached from {self.start!r}")
        path = [dest]
        node = dest
        while node != self.start:
            node = self.parent[node]
            path.append(node)
            if len(path) > len(self.parent) + 1:  # pragma: no cover
                raise RuntimeError("cycle in parent pointers")
        path.reverse()
        return path

    def cost_to(self, dest: str) -> float:
        """Minimax cost of the chosen path to ``dest`` (inf if unreached)."""
        return self.cost.get(dest, math.inf)

    def next_hop(self, dest: str) -> str:
        """First hop out of the root toward ``dest``.

        This is what a depot's route table stores.
        """
        path = self.path_to(dest)
        if len(path) == 1:
            return self.start
        return path[1]

    def first_hops(self) -> dict[str, str]:
        """First hop out of the root for *every* reached node, in one pass.

        Equivalent to ``{d: self.next_hop(d) for d in reached}`` but
        flattens the whole tree with path-compression instead of one
        root-ward walk per destination, and memoizes the result — this
        is the route-table flattening of Section 4.2, done once per
        tree instead of once per (depot, destination) lookup.  Callers
        must treat the returned mapping as read-only.
        """
        if self._first_hops is not None:
            return self._first_hops
        hops: dict[str, str] = {self.start: self.start}
        for node in self.parent:
            if node in hops:
                continue
            stack: list[str] = []
            cur = node
            while cur != self.start and cur not in hops:
                stack.append(cur)
                cur = self.parent[cur]
                if len(stack) > len(self.parent):  # pragma: no cover
                    raise RuntimeError("cycle in parent pointers")
            # cur is either the root (next stack entry is a direct child
            # of the root, i.e. its own first hop) or a node whose hop
            # is already known.
            base = None if cur == self.start else hops[cur]
            for n in reversed(stack):
                if base is None:
                    base = n
                hops[n] = base
        self._first_hops = hops
        return hops

    def __len__(self) -> int:
        return len(self.parent)


def build_mmp_tree(
    graph: CostGraph,
    start: str,
    epsilon: float = 0.0,
    relay_nodes: set[str] | None = None,
) -> MinimaxTree:
    """Build the MMP tree from ``start`` over all of ``graph``.

    Parameters
    ----------
    graph:
        Anything exposing ``hosts`` and ``cost(src, dst)`` — typically a
        :class:`repro.nws.matrix.PerformanceMatrix`.
    start:
        Root node; must be one of ``graph.hosts``.
    epsilon:
        Edge-equivalence fraction.  The paper uses 0.1 ("if the evaluated
        edge was not 10 % better than the previous edge, then it was not
        added to the path").
    relay_nodes:
        If given, only these nodes may appear as *intermediate* hops;
        every other node is a leaf of the tree.  Used for the Abilene
        experiment, where only the POP depots forward.

    Returns
    -------
    MinimaxTree
        Parent pointers and minimax costs for every reachable node.
    """
    check_non_negative("epsilon", epsilon)
    hosts = list(graph.hosts)
    if start not in hosts:
        raise KeyError(f"start node {start!r} not in graph")

    parent: dict[str, str] = {start: start}
    cost: dict[str, float] = {start: 0.0}
    best: dict[str, float] = {h: math.inf for h in hosts}
    best[start] = 0.0
    done: set[str] = set()
    events: list[tuple[float, str, str, float]] = []
    settles: list[str] = []

    # lazy-deletion heap of (tentative cost, node)
    heap: list[tuple[float, str]] = [(0.0, start)]
    while heap:
        node_cost, node = heapq.heappop(heap)
        if node in done or node_cost > best[node]:
            continue  # stale entry
        done.add(node)
        settles.append(node)
        cost[node] = node_cost
        if (
            relay_nodes is not None
            and node != start
            and node not in relay_nodes
        ):
            continue  # may be reached, but never forwards
        for other in hosts:
            if other in done or other == node:
                continue
            edge = graph.cost(node, other)
            if not math.isfinite(edge):
                continue
            relax_cost = max(edge, node_cost)
            # Appendix A: adopt only if more than epsilon-fraction better
            if relax_cost * (1.0 + epsilon) < best[other]:
                best[other] = relax_cost
                parent[other] = node
                events.append((node_cost, node, other, relax_cost))
                heapq.heappush(heap, (relax_cost, other))

    trace = BuildTrace(
        relay_nodes=(
            frozenset(relay_nodes) if relay_nodes is not None else None
        ),
        events=events,
        settles=settles,
    )
    return MinimaxTree(
        start=start, parent=parent, cost=cost, epsilon=epsilon, trace=trace
    )


def repair_mmp_tree(
    graph: CostGraph,
    tree: MinimaxTree,
    avoid: set[str] | frozenset[str] | list[str],
    dense: np.ndarray | None = None,
) -> MinimaxTree:
    """The tree ``build_mmp_tree`` would produce with ``avoid`` barred
    from forwarding — computed by repairing ``tree`` instead of
    rebuilding from scratch.

    Equivalent to ``build_mmp_tree(graph, tree.start, tree.epsilon,
    relay_nodes=R - avoid)`` where ``R`` is the relay set the tree was
    built under (all hosts when unrestricted), but the work scales with
    the number of nodes whose adoption history the avoided depots
    actually touched, not with the graph.  Avoided hosts may still be
    *reached* (as leaves); they just never forward — exactly the
    semantics of :meth:`LogisticalScheduler.reroute`.

    The graph must be unchanged since the tree was built (the same
    contract as the scheduler's tree cache).  ``dense`` may carry a
    precomputed ``graph.cost_matrix()`` aligned with ``graph.hosts`` to
    spare the repair the dense-matrix rebuild; entries must equal
    ``graph.cost`` bit-for-bit.  Trees without a build trace (hand-made
    or themselves repaired) fall back to a full rebuild, as does any
    repair whose tainted region grows past half the graph.
    """
    avoid = set(avoid)
    hosts = list(graph.hosts)
    start = tree.start
    trace = tree.trace
    if trace is not None and trace.relay_nodes is not None:
        relay_new = set(trace.relay_nodes) - avoid
    else:
        relay_new = set(hosts) - avoid
    if trace is None:
        return build_mmp_tree(
            graph, start, tree.epsilon, relay_nodes=relay_new
        )

    events = trace.events
    seed = (avoid - {start}) & trace.offerers
    if not seed:
        # no avoided host ever placed a winning offer, so barring them
        # from forwarding changes nothing: the original tree stands
        return tree

    if dense is None:
        dense = _dense_of(graph)
    for _ in range(len(hosts) + 1):
        # taint closure: one chronological pass suffices, because a
        # node's own offers are always later events than the adoptions
        # that tainted it
        tainted = set(seed)
        for _, offerer, adoptee, _ in events:
            if offerer in tainted:
                tainted.add(adoptee)
        if 2 * len(tainted) > len(hosts):
            break  # repair would touch most of the graph anyway
        out = _replay_tainted(graph, tree, tainted, relay_new, dense)
        if isinstance(out, MinimaxTree):
            return out
        seed.update(out)  # verification re-tainted clean nodes; widen
    if dense is not None:
        return _dense_build(hosts, start, tree.epsilon, relay_new, dense)
    return build_mmp_tree(graph, start, tree.epsilon, relay_nodes=relay_new)


def _dense_of(graph: CostGraph) -> np.ndarray | None:
    """``graph.cost_matrix()`` when available, else None."""
    matfn = getattr(graph, "cost_matrix", None)
    if matfn is None:
        return None
    try:
        return matfn()
    except AttributeError:
        return None  # wrapper over a matrix-less graph


def _dense_build(
    hosts: list[str],
    start: str,
    epsilon: float,
    relay_nodes: set[str],
    dense: np.ndarray,
) -> MinimaxTree:
    """:func:`build_mmp_tree` with array relaxation — bit-identical.

    The repair's fallback for blast radii past the taint threshold:
    relaxing a settled node against every neighbour is one vector op
    over the dense cost row instead of a python loop of ``graph.cost``
    calls.  Heap entries, adoption tests (same ``relax*(1+ε) < best``
    floats) and tie behaviour all match the scalar builder exactly; an
    infinite edge relaxes to an infinite cost, which the strict
    comparison rejects just as the scalar ``isfinite`` skip does.  No
    trace is recorded — repaired trees are not themselves repairable.
    """
    one = 1.0 + epsilon
    inf = math.inf
    idx = {h: i for i, h in enumerate(hosts)}
    n = len(hosts)
    best = np.full(n, inf)
    best[idx[start]] = 0.0
    parent: dict[str, str] = {start: start}
    cost: dict[str, float] = {start: 0.0}
    done = np.zeros(n, dtype=bool)

    heap: list[tuple[float, str]] = [(0.0, start)]
    while heap:
        node_cost, node = heapq.heappop(heap)
        ni = idx[node]
        if done[ni] or node_cost > best[ni]:
            continue  # stale entry
        done[ni] = True
        cost[node] = node_cost
        if node != start and node not in relay_nodes:
            continue  # may be reached, but never forwards
        relax = np.maximum(dense[ni], node_cost)
        relax[ni] = inf  # no self edge
        hits = np.nonzero((relax * one < best) & ~done)[0]
        for h in hits:
            other = hosts[int(h)]
            val = float(relax[h])
            best[h] = val
            parent[other] = node
            heapq.heappush(heap, (val, other))

    return MinimaxTree(start=start, parent=parent, cost=cost, epsilon=epsilon)


def _replay_tainted(
    graph: CostGraph,
    tree: MinimaxTree,
    tainted: set[str],
    relay_new: set[str],
    dense: np.ndarray | None,
) -> MinimaxTree | list[str]:
    """Re-run the MMP construction for ``tainted`` nodes only.

    Clean nodes (everything else) behave identically in the original
    run and the hypothetical rebuild: their adoptions all came from
    clean offerers (guaranteed by the taint closure), so their settle
    order, costs and outgoing offers are read straight off the recorded
    trace.  Tainted nodes run live Dijkstra mechanics — against the
    scripted offers of clean forwarders and against each other — with
    live settles merged into the *recorded* clean settle sequence.  The
    merge is exact: a live entry ``(b, v)`` pops before the next
    recorded clean settle ``(c, w)`` iff ``(b, v) < (c, w)``, which is
    precisely how the real heap would order them, because a clean
    node's final entry is always pushed during an earlier clean settle.

    Every offer a live node makes toward a clean node is checked
    against that node's replayed best-so-far; a hit means the clean
    node's rebuild would diverge after all (the ε filter makes costs
    non-monotone under node removal), and the hit names are returned so
    the caller can widen the taint set and retry.
    """
    start, eps = tree.start, tree.epsilon
    one = 1.0 + eps
    inf = math.inf
    hosts = list(graph.hosts)
    idx = {h: i for i, h in enumerate(hosts)}
    cost_orig, parent_orig = tree.cost, tree.parent
    trace = tree.trace

    # the recorded clean settle sequence, in true pop order
    clean_seq = [(cost_orig[w], w) for w in trace.settles if w not in tainted]

    # replayed clean state, one array slot per non-root clean node:
    # inf = not yet reached, -inf = settled (can never adopt again),
    # anything else = current best.  This doubles as the verification
    # bound — an exact one, since replay tracks the merged order.
    ver_name = [w for w in hosts if w not in tainted and w != start]
    vpos = {w: i for i, w in enumerate(ver_name)}
    if dense is not None:
        ver_idx = np.array([idx[w] for w in ver_name], dtype=np.intp)
    best_arr = np.full(len(ver_name), inf)

    # recorded adoptions grouped by offerer; clean adoptees only — the
    # tainted ones are re-derived live from the graph
    adopt_by: dict[str, list[tuple[int, float]]] = {}
    for _, offerer, adoptee, val in trace.events:
        if adoptee not in tainted:
            adopt_by.setdefault(offerer, []).append((vpos[adoptee], val))

    tainted_list = sorted(tainted)
    tpos = {v: i for i, v in enumerate(tainted_list)}
    if dense is not None:
        t_idx = np.array([idx[v] for v in tainted_list], dtype=np.intp)

    # Scripted offer from clean forwarder z to v is max(edge(z, v),
    # cost(z)), delivered the moment z settles.  Only strict running
    # minima can ever win: once an offer of value m has been delivered,
    # best[v] <= m*(1+eps) forever, so a later offer succeeds only if
    # strictly below m.  Each stream collapses to its prefix-minima
    # subsequence, keyed by position in the clean settle sequence.
    fwd_ci = [
        ci
        for ci, (_, z) in enumerate(clean_seq)
        if z == start or z in relay_new
    ]
    fwd_cost = np.array([clean_seq[ci][0] for ci in fwd_ci])
    if dense is not None:
        fwd_idx = np.array(
            [idx[clean_seq[ci][1]] for ci in fwd_ci], dtype=np.intp
        )
    deliver_at: dict[int, list[tuple[str, float]]] = {}
    for v in tainted_list:
        if dense is not None:
            vals = np.maximum(dense[fwd_idx, idx[v]], fwd_cost)
        else:
            vals = np.array(
                [
                    max(graph.cost(clean_seq[ci][1], v), clean_seq[ci][0])
                    for ci in fwd_ci
                ]
            )
        if not vals.size:
            continue
        run_min = np.minimum.accumulate(vals)
        prior = np.concatenate(([inf], run_min[:-1]))
        for j in np.nonzero(vals < prior)[0]:
            deliver_at.setdefault(fwd_ci[int(j)], []).append(
                (v, float(vals[j]))
            )

    best = {v: inf for v in tainted_list}
    bests = np.full(len(tainted_list), inf)
    par: dict[str, str] = {}
    new_cost: dict[str, float] = {}
    settled: set[str] = set()
    heap: list[tuple[float, str]] = []  # live tainted candidates

    ci = 0
    n_clean = len(clean_seq)
    while True:
        while heap and (
            heap[0][1] in settled or heap[0][0] > best[heap[0][1]]
        ):
            heapq.heappop(heap)  # stale
        have_clean = ci < n_clean
        if not heap and not have_clean:
            break
        if have_clean and (
            not heap or clean_seq[ci] < (heap[0][0], heap[0][1])
        ):
            # next event: a recorded clean settle
            _, z = clean_seq[ci]
            for p, val in adopt_by.get(z, ()):
                best_arr[p] = val  # replayed clean adoption
            pz = vpos.get(z)
            if pz is not None:
                best_arr[pz] = -inf  # z settles
            for v, val in deliver_at.get(ci, ()):
                if v not in settled and val * one < best[v]:
                    best[v] = val
                    bests[tpos[v]] = val
                    par[v] = z
                    heapq.heappush(heap, (val, v))
            ci += 1
            continue
        # next event: a live tainted settle
        b, v = heapq.heappop(heap)
        settled.add(v)
        new_cost[v] = b
        bests[tpos[v]] = -inf
        if v not in relay_new:
            continue  # reached, but barred from forwarding
        # live offers to the remaining tainted nodes
        if dense is not None:
            row = dense[idx[v], t_idx]
        else:
            row = np.array([graph.cost(v, w) for w in tainted_list])
        vals = np.maximum(row, b)
        for h in np.nonzero(vals * one < bests)[0]:
            w = tainted_list[int(h)]
            val = float(vals[h])
            best[w] = val
            bests[h] = val
            par[w] = v
            heapq.heappush(heap, (val, w))
        # verification: would this repaired node's offer beat any clean
        # node's replayed best right now?  best_arr is exact, so any
        # hit is a true divergence
        if dense is not None:
            vrow = dense[idx[v], ver_idx]
        else:
            vrow = np.array([graph.cost(v, w) for w in ver_name])
        hit = np.nonzero(np.maximum(vrow, b) * one < best_arr)[0]
        if hit.size:
            return [ver_name[int(h)] for h in hit]

    parent_new: dict[str, str] = {}
    cost_new: dict[str, float] = {}
    for node, c in cost_orig.items():
        if node not in tainted:
            cost_new[node] = c
            parent_new[node] = parent_orig[node]
    for v in settled:
        cost_new[v] = new_cost[v]
        parent_new[v] = par[v]
    return MinimaxTree(
        start=start, parent=parent_new, cost=cost_new, epsilon=eps
    )

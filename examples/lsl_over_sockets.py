#!/usr/bin/env python3
"""The Logistical Session Layer on real TCP sockets.

Starts a sink and two depot servers on localhost, then sends a session
whose loose source route chains the depots — the same wire format,
forwarding and back-pressure the paper's user-level depot processes
implemented.  Verifies the payload arrives byte-exact.

Run:  python examples/lsl_over_sockets.py
"""

import hashlib

from repro.lsl.header import SessionHeader, new_session_id
from repro.lsl.options import LooseSourceRoute
from repro.lsl.socket_transport import DepotServer, SinkServer, send_session
from repro.util.rng import RngStream


def main() -> None:
    payload = RngStream(99).generator.bytes(1 << 20)  # 1 MB of noise
    digest = hashlib.sha256(payload).hexdigest()

    with SinkServer() as sink, DepotServer() as depot_a, DepotServer() as depot_b:
        print(f"sink     listening on {sink.address}")
        print(f"depot A  listening on {depot_a.address}")
        print(f"depot B  listening on {depot_b.address}")

        header = SessionHeader(
            session_id=new_session_id(),
            src_ip="127.0.0.1",
            dst_ip="127.0.0.1",
            src_port=0,
            dst_port=sink.port,
            options=(
                # connect to depot A; the option carries the hops beyond it
                LooseSourceRoute(hops=(("127.0.0.1", depot_b.port),)),
            ),
        )
        print(f"\nsession {header.hex_id[:16]}...: "
              f"source -> depot A -> depot B -> sink")
        send_session(payload, header, depot_a.address)

        received = sink.wait_for(header.hex_id)
        ok = hashlib.sha256(received).hexdigest() == digest
        print(f"received {len(received)} bytes, integrity ok: {ok}")
        print(f"depot A forwarded {depot_a.bytes_forwarded} bytes "
              f"in {depot_a.sessions_forwarded} session(s)")
        print(f"depot B forwarded {depot_b.bytes_forwarded} bytes "
              f"in {depot_b.sessions_forwarded} session(s)")

        arrived = sink.headers[header.hex_id]
        lsrr = arrived.option(LooseSourceRoute)
        print(f"loose source route at arrival: "
              f"{lsrr.hops if lsrr else 'consumed'}")


if __name__ == "__main__":
    main()

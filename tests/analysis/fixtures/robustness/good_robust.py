"""Handled errors and bounded sockets: no findings expected."""

import socket


def careful(payload: bytes, errors: list) -> bytes:
    try:
        return payload.decode().encode()
    except UnicodeDecodeError as exc:
        errors.append(exc)
        return b""


def logged(payload: bytes, errors: list) -> None:
    try:
        payload.decode()
    except Exception as exc:
        errors.append(exc)


_DIAL_TIMEOUT_S = 5.0


def dial(
    host: str, port: int, timeout: float = _DIAL_TIMEOUT_S
) -> socket.socket:
    return socket.create_connection((host, port), timeout=timeout)

"""RPR016 — resource acquired on a path where some exit skips release.

Tracks local names bound directly from a resource factory —
``sock = socket.socket(...)``, ``conn = socket.create_connection(...)``,
``f = open(...)``, ``t = threading.Thread(...)`` — inside one function
and checks that every exit path releases them:

* never released at all (no ``close()``/``join()``, no ``with``, no
  ``finally``) → the resource leaks on *every* path;
* released only on the straight-line path, with an early ``return`` or
  ``raise`` between acquisition and release → those exits leak it.

A name that *escapes* — returned, yielded, stored into an attribute,
container or other variable, or passed to another call — transfers
ownership somewhere this pass cannot see, so it is exempt.  ``with``
usage and a release inside ``finally`` always count as covered.
Exceptions raised between acquisition and a non-``finally`` release
are real leak paths too, but flagging them would bury the classic
cases in noise; the two variants above are the ones worth a build
break.  Test code is exempt (fixtures juggle sockets casually).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.astutil import ImportMap
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.walker import ModuleSource

#: factory → (resource kind, release method names)
_FACTORIES: dict[str, tuple[str, tuple[str, ...]]] = {
    "socket.socket": ("socket", ("close", "detach")),
    "socket.create_connection": ("socket", ("close", "detach")),
    "open": ("file", ("close",)),
    "threading.Thread": ("thread", ("join",)),
}

_NESTED_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)


@dataclass
class _Resource:
    name: str
    kind: str
    releases: tuple[str, ...]
    line: int
    col: int
    escaped: bool = False
    covered: bool = False  #: `with` usage or release in finally
    release_lines: list[int] = field(default_factory=list)


def _neutral_parent(parent: ast.AST, name_node: ast.Name) -> bool:
    """Uses that neither release nor leak ownership: truthiness tests,
    comparisons, and being the receiver of a method call."""
    if isinstance(parent, ast.Attribute) and parent.value is name_node:
        return True  # receiver of `name.method(...)` / attribute read
    if isinstance(parent, (ast.Compare, ast.BoolOp, ast.UnaryOp)):
        return True
    if isinstance(parent, (ast.If, ast.While, ast.Assert)):
        return True  # bare `if name:` truthiness test
    return False


@register
class ResourceLeakPathRule(Rule):
    """RPR016: some exit path skips close()/join()."""

    id = "RPR016"
    name = "resource-leak-path"
    rationale = (
        "a socket, file or thread that an exit path never releases "
        "leaks until process death — under load, until fd exhaustion"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return not module.is_test_code

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, imports)

    def _check_function(
        self,
        module: ModuleSource,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: ImportMap,
    ) -> Iterator[Finding]:
        # map every node in this function (nested defs excluded) to its
        # parent, and collect the spans of `finally` suites
        parents: dict[int, ast.AST] = {}
        finally_nodes: set[int] = set()
        exits: list[int] = []  # lines of return/raise statements

        def index(node: ast.AST, in_finally: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _NESTED_DEFS):
                    continue
                parents[id(child)] = node
                if isinstance(child, (ast.Return, ast.Raise)):
                    exits.append(child.lineno)
                if in_finally or (
                    isinstance(node, ast.Try) and child in node.finalbody
                ):
                    finally_nodes.add(id(child))
                    index(child, True)
                else:
                    index(child, in_finally)

        index(func, False)

        resources: dict[str, _Resource] = {}
        for node in _shallow_walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                resolved = imports.resolve_call(node.value)
                if resolved in _FACTORIES:
                    kind, releases = _FACTORIES[resolved]
                    # re-binding starts a new tracking window; keep the
                    # first acquisition (the one a later exit can leak)
                    resources.setdefault(
                        node.targets[0].id,
                        _Resource(
                            name=node.targets[0].id,
                            kind=kind,
                            releases=releases,
                            line=node.lineno,
                            col=node.col_offset,
                        ),
                    )

        if not resources:
            return

        for node in _shallow_walk(func):
            if isinstance(node, ast.withitem):
                inner = node.context_expr
                if isinstance(inner, ast.Name) and inner.id in resources:
                    resources[inner.id].covered = True
                continue
            if not isinstance(node, ast.Name) or not isinstance(
                node.ctx, ast.Load
            ):
                continue
            resource = resources.get(node.id)
            if resource is None:
                continue
            parent = parents.get(id(node))
            if parent is None:
                continue
            if isinstance(parent, ast.withitem):
                resource.covered = True
                continue
            if _neutral_parent(parent, node):
                # release call? `name.close()` / `name.join()`
                if (
                    isinstance(parent, ast.Attribute)
                    and parent.attr in resource.releases
                    and isinstance(parents.get(id(parent)), ast.Call)
                ):
                    if id(parent) in finally_nodes or (
                        id(parents[id(parent)]) in finally_nodes
                    ):
                        resource.covered = True
                    resource.release_lines.append(parent.lineno)
                continue
            resource.escaped = True

        for resource in sorted(resources.values(), key=lambda r: r.line):
            if resource.escaped or resource.covered:
                continue
            if not resource.release_lines:
                yield Finding(
                    path=module.path,
                    line=resource.line,
                    col=resource.col,
                    rule=self.id,
                    message=(
                        f"{resource.kind} `{resource.name}` acquired "
                        "here is never "
                        f"{'/'.join(resource.releases)}()d on any path; "
                        "use `with` or a try/finally"
                    ),
                    symbol=resource.name,
                )
                continue
            first_release = min(resource.release_lines)
            skipping = [
                line
                for line in exits
                if resource.line < line < first_release
            ]
            if skipping:
                yield Finding(
                    path=module.path,
                    line=resource.line,
                    col=resource.col,
                    rule=self.id,
                    message=(
                        f"{resource.kind} `{resource.name}` is released "
                        f"at line {first_release}, but the exit at line "
                        f"{skipping[0]} skips it; move the release into "
                        "a finally or use `with`"
                    ),
                    symbol=resource.name,
                )


def _shallow_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body, not descending into nested defs."""
    stack: list[ast.AST] = [func]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _NESTED_DEFS):
                continue
            stack.append(child)

"""Labelled, positional-dict, dynamic-name and computed-label sites."""


def publish(registry, series_name):
    registry.counter("rx_chunk_count", labels={"node": "depot0"})
    registry.gauge("occupancy_level", {"node": "depot0"})
    registry.counter(series_name)
    registry.histogram("session_duration", labels=make_labels())


def make_labels():
    return {"node": "sink"}

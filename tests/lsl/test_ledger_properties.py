"""Property tests for SessionLedger: generations and ack accounting.

The ledger arbitrates between a stalled old connection handler and the
reconnect that superseded it.  Whatever the interleaving of claims and
appends, only the newest claimant may extend the staged bytes, every
byte is counted as fresh exactly once, and ``read()`` returns exactly
what was accepted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsl.faults import SessionLedger

# an op is ("claim",) or ("append", use_stale_generation, payload)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("claim")),
        st.tuples(
            st.just("append"),
            st.booleans(),
            st.binary(min_size=1, max_size=64),
        ),
    ),
    max_size=60,
)


@given(_OPS)
@settings(max_examples=200)
def test_interleaved_generations_roundtrip(ops):
    """Stale appenders are refused; read() round-trips accepted bytes."""
    ledger = SessionLedger(total=1 << 20)
    generation, acked = ledger.claim()
    assert (generation, acked) == (1, 0)
    stale = generation
    expected = bytearray()
    for op in ops:
        if op[0] == "claim":
            stale = generation
            generation, acked = ledger.claim()
            assert generation > stale
            assert acked == len(expected)
        else:
            _, use_stale, payload = op
            gen = stale if use_stale else generation
            accepted = ledger.append(gen, payload)
            if gen == generation:
                assert accepted
                expected += payload
            else:
                assert not accepted
            assert ledger.acked == len(expected)
    assert ledger.read(0, ledger.acked) == bytes(expected)
    assert ledger.complete == (len(expected) >= ledger.total)


@given(
    st.lists(
        st.tuples(
            # how far back from the high-water mark the send restarts
            st.integers(min_value=0, max_value=256),
            st.integers(min_value=1, max_value=256),  # send length
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=200)
def test_no_byte_counted_fresh_twice(sends):
    """Across overlapping sends, fresh + retransmitted bytes balance:
    every byte below the final high-water mark was counted as fresh
    exactly once, no matter how the ranges overlapped."""
    ledger = SessionLedger(total=1 << 20)
    fresh = 0
    high = 0
    for back, length in sends:
        start = max(0, high - back)
        end = start + length
        retransmitted = ledger.note_sent(start, end)
        assert 0 <= retransmitted <= end - start
        fresh += (end - start) - retransmitted
        high = max(high, end)
        assert ledger.high_water == high
    assert fresh == high

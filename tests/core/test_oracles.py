"""Independent-oracle cross-checks against networkx.

Our Dijkstra baseline and the minimax tree are verified against
networkx's well-tested graph algorithms on random instances — a
different implementation, a different author, the same answers.
"""

import math
import random

import networkx as nx
import pytest

from repro.core.baselines import dijkstra_tree
from repro.core.minimax import build_mmp_tree

from tests.core.graphs import DictGraph


def random_graph(seed: int, n: int = 8, density: float = 0.7):
    rng = random.Random(seed)
    hosts = [f"h{i}" for i in range(n)]
    costs = {}
    for a in hosts:
        for b in hosts:
            if a != b and rng.random() < density:
                costs[(a, b)] = rng.uniform(1, 100)
    return DictGraph(hosts, costs), costs


def to_networkx(hosts, costs) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(hosts)
    for (a, b), c in costs.items():
        g.add_edge(a, b, weight=c)
    return g


class TestDijkstraOracle:
    @pytest.mark.parametrize("seed", range(10))
    def test_costs_match_networkx(self, seed):
        graph, costs = random_graph(seed)
        nxg = to_networkx(graph.hosts, costs)
        ours = dijkstra_tree(graph, "h0")
        lengths = nx.single_source_dijkstra_path_length(nxg, "h0")
        for host in graph.hosts:
            if host == "h0":
                continue
            if host in lengths:
                assert ours.cost_to(host) == pytest.approx(lengths[host])
            else:
                assert not ours.reached(host)


class TestMinimaxOracle:
    @staticmethod
    def networkx_minimax(nxg: nx.DiGraph, source: str, dest: str) -> float:
        """Minimax cost via binary search over edge thresholds: the
        smallest edge weight w such that the subgraph of edges <= w
        still connects source to dest."""
        weights = sorted({d["weight"] for _, _, d in nxg.edges(data=True)})
        best = math.inf
        for w in weights:
            sub = nx.DiGraph(
                (a, b)
                for a, b, d in nxg.edges(data=True)
                if d["weight"] <= w
            )
            if sub.has_node(source) and sub.has_node(dest) and nx.has_path(
                sub, source, dest
            ):
                best = w
                break
        return best

    @pytest.mark.parametrize("seed", range(10))
    def test_minimax_costs_match_threshold_oracle(self, seed):
        graph, costs = random_graph(seed, n=7)
        nxg = to_networkx(graph.hosts, costs)
        tree = build_mmp_tree(graph, "h0", epsilon=0.0)
        for host in graph.hosts:
            if host == "h0":
                continue
            oracle = self.networkx_minimax(nxg, "h0", host)
            if math.isfinite(oracle):
                assert tree.cost_to(host) == pytest.approx(oracle)
            else:
                assert not tree.reached(host)

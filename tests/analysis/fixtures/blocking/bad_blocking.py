"""Coroutines that block the event loop — RPR015 positives."""

import socket
import time


async def pump(session_sock, state_lock):
    time.sleep(0.05)  # expect: RPR015
    socket.create_connection(("depot", 5001))  # expect: RPR015
    session_sock.sendall(b"hdr")  # expect: RPR015
    data = session_sock.recv(4096)  # expect: RPR015
    state_lock.acquire()  # expect: RPR015
    with state_lock:  # expect: RPR015
        pass
    return data

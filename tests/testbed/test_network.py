"""Testbed abstraction tests."""

import math

import pytest

from repro.net.topology import Topology
from repro.testbed.network import Testbed, gateway_name


def tiny_testbed(**overrides):
    """Two sites, three hosts, explicit link numbers."""
    topo = Topology()
    gw_a, gw_b = gateway_name("a.edu"), gateway_name("b.edu")
    topo.add_host("h1.a.edu", socket_buffer=64 << 10)
    topo.add_host("h2.a.edu", socket_buffer=64 << 10)
    topo.add_host("h3.b.edu", socket_buffer=64 << 10)
    topo.add_host(gw_a)
    topo.add_host(gw_b)
    topo.add_symmetric_link("h1.a.edu", gw_a, 0.0002, 12.5e6)
    topo.add_symmetric_link("h2.a.edu", gw_a, 0.0002, 12.5e6)
    topo.add_symmetric_link("h3.b.edu", gw_b, 0.0002, 12.5e6)
    topo.add_symmetric_link(gw_a, gw_b, 0.02, 6e6, loss_rate=1e-4)
    kwargs = dict(
        hosts=["h1.a.edu", "h2.a.edu", "h3.b.edu"],
        site_of={
            "h1.a.edu": "a.edu",
            "h2.a.edu": "a.edu",
            "h3.b.edu": "b.edu",
        },
        topology=topo,
        gateway_routes={
            ("a.edu", "b.edu"): [gw_a, gw_b],
            ("b.edu", "a.edu"): [gw_b, gw_a],
        },
    )
    kwargs.update(overrides)
    return Testbed(**kwargs)


class TestConstruction:
    def test_missing_site_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            tiny_testbed(site_of={"h1.a.edu": "a.edu"})

    def test_default_depots_are_all_hosts(self):
        tb = tiny_testbed()
        assert set(tb.depot_hosts) == set(tb.hosts)

    def test_default_endpoints_exclude_dedicated_depots(self):
        tb = tiny_testbed(depot_hosts=["h2.a.edu"])
        assert set(tb.endpoint_hosts) == {"h1.a.edu", "h3.b.edu"}

    def test_all_depots_means_all_endpoints(self):
        tb = tiny_testbed()
        assert set(tb.endpoint_hosts) == set(tb.hosts)


class TestSublinkSpec:
    def test_inter_site_composes_links(self):
        tb = tiny_testbed()
        spec = tb.sublink_spec("h1.a.edu", "h3.b.edu")
        assert spec.rtt == pytest.approx(2 * (0.0002 + 0.02 + 0.0002))
        assert spec.bandwidth == pytest.approx(6e6)
        assert spec.loss_rate == pytest.approx(1e-4)

    def test_intra_site_through_gateway(self):
        tb = tiny_testbed()
        spec = tb.sublink_spec("h1.a.edu", "h2.a.edu")
        assert spec.rtt == pytest.approx(2 * 2 * 0.0002)
        assert spec.bandwidth == pytest.approx(12.5e6)

    def test_same_host_rejected(self):
        with pytest.raises(ValueError):
            tiny_testbed().sublink_spec("h1.a.edu", "h1.a.edu")

    def test_rate_cap_applies_to_either_end(self):
        tb = tiny_testbed(rate_cap={"h1.a.edu": 1e6})
        assert tb.sublink_spec("h1.a.edu", "h3.b.edu").bandwidth == 1e6
        assert tb.sublink_spec("h3.b.edu", "h1.a.edu").bandwidth == 1e6
        # uncapped pair unaffected
        assert tb.sublink_spec("h2.a.edu", "h3.b.edu").bandwidth == 6e6

    def test_buffers_come_from_endpoints(self):
        tb = tiny_testbed()
        spec = tb.sublink_spec("h1.a.edu", "h3.b.edu")
        assert spec.send_buffer == 64 << 10
        assert spec.recv_buffer == 64 << 10


class TestRouteSpecs:
    def test_per_hop_specs(self):
        tb = tiny_testbed()
        specs = tb.route_specs(["h1.a.edu", "h2.a.edu", "h3.b.edu"])
        assert len(specs) == 2

    def test_short_route_rejected(self):
        with pytest.raises(ValueError):
            tiny_testbed().route_specs(["h1.a.edu"])

    def test_forward_cap_hits_depot_adjacent_hops(self):
        tb = tiny_testbed(forward_cap={"h2.a.edu": 1e5})
        specs = tb.route_specs(["h1.a.edu", "h2.a.edu", "h3.b.edu"])
        assert specs[0].bandwidth == 1e5  # into the depot
        assert specs[1].bandwidth == 1e5  # out of the depot

    def test_endpoints_forward_cap_not_charged(self):
        tb = tiny_testbed(forward_cap={"h1.a.edu": 1e3, "h3.b.edu": 1e3})
        specs = tb.route_specs(["h1.a.edu", "h2.a.edu", "h3.b.edu"])
        # neither endpoint forwards, so their caps must not apply
        assert all(s.bandwidth > 1e3 for s in specs)


class TestSchedulerInputs:
    def test_true_bandwidth_positive_and_finite(self):
        tb = tiny_testbed()
        bw = tb.true_bandwidth("h1.a.edu", "h3.b.edu")
        assert 0 < bw < math.inf

    def test_true_bandwidth_window_limited_on_long_path(self):
        tb = tiny_testbed()
        spec = tb.sublink_spec("h1.a.edu", "h3.b.edu")
        # 64 KB window over ~40 ms: below the 6 Mbit wire? window rate:
        expected = min(spec.window_limit / spec.rtt, spec.bandwidth)
        assert tb.true_bandwidth("h1.a.edu", "h3.b.edu") <= expected * 1.01

    def test_site_pairs(self):
        tb = tiny_testbed()
        assert ("a.edu", "b.edu") in tb.site_pairs()
        assert len(tb.site_pairs()) == 2

    def test_hosts_at(self):
        tb = tiny_testbed()
        assert tb.hosts_at("a.edu") == ["h1.a.edu", "h2.a.edu"]

"""Experiment harness: synthetic testbeds, workloads, campaigns.

The paper's evaluation ran on two real environments we cannot access:

* **PlanetLab** (Section 4.2): 142 machines at university sites, one to
  three hosts per site, small TCP buffers (64 KB), virtualisation load
  and administrative rate caps — regenerated synthetically by
  :mod:`~repro.testbed.planetlab`;
* **Abilene** (Figure 11): 10 university hosts plus depots at
  Internet2's backbone POPs — regenerated from the historical Abilene
  city map by :mod:`~repro.testbed.abilene`.

:mod:`~repro.testbed.workload` reimplements the paper's pseudo-random
test generator (2^n MB sizes, random source/sink, random direct-vs-LSL
choice); :mod:`~repro.testbed.experiment` runs measurement campaigns
against the analytic transfer models with measurement noise;
:mod:`~repro.testbed.stats` aggregates results into the per-case speedup
quantities the paper's figures plot.
"""

from repro.testbed.sites import Site, SiteCatalog, host_name
from repro.testbed.planetlab import PlanetLabConfig, generate_planetlab
from repro.testbed.abilene import (
    ABILENE_POPS,
    abilene_testbed,
    AbileneConfig,
)
from repro.testbed.workload import TransferRequest, WorkloadConfig, WorkloadGenerator
from repro.testbed.experiment import (
    CampaignConfig,
    CampaignResult,
    MeasuredTransfer,
    run_campaign,
    run_random_campaign,
)
from repro.testbed.stats import (
    CaseStats,
    group_cases,
    speedup_by_size,
    percentile_of_unity,
    box_stats,
)
from repro.testbed.chaos import (
    ChaosConfig,
    ChaosReport,
    EpisodeResult,
    run_chaos,
)

__all__ = [
    "Site",
    "SiteCatalog",
    "host_name",
    "PlanetLabConfig",
    "generate_planetlab",
    "ABILENE_POPS",
    "abilene_testbed",
    "AbileneConfig",
    "TransferRequest",
    "WorkloadConfig",
    "WorkloadGenerator",
    "CampaignConfig",
    "CampaignResult",
    "MeasuredTransfer",
    "run_campaign",
    "run_random_campaign",
    "CaseStats",
    "group_cases",
    "speedup_by_size",
    "percentile_of_unity",
    "box_stats",
    "ChaosConfig",
    "ChaosReport",
    "EpisodeResult",
    "run_chaos",
]
